package maintain_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dag"
	"repro/internal/maintain"
	"repro/internal/rules"
	"repro/internal/storage"
	"repro/internal/tracks"
	"repro/internal/txn"
	"repro/internal/value"
)

// buildMirrorMode is buildMirror with the store's allocation mode set:
// fresh=true disables the slab arena and slot recycling for every
// relation before any maintained window runs. The corpus seed rows
// predate the flag, which is fine — allocation mode never changes
// relation contents, only where stored tuple bytes live.
func buildMirrorMode(t *testing.T, seed int64, fresh bool) *mirror {
	t.Helper()
	m := buildMirror(t, seed)
	m.db.Store.FreshAlloc = fresh
	return m
}

// modeFactory wraps mirrorFactory so every shard store runs in the
// requested allocation mode.
func modeFactory(seed int64, fresh bool) func() (*maintain.ShardSetup, error) {
	base := mirrorFactory(seed)
	return func() (*maintain.ShardSetup, error) {
		s, err := base()
		if err == nil {
			s.Store.FreshAlloc = fresh
		}
		return s, err
	}
}

// buildShardedMode is buildSharded with the allocation mode threaded
// through to each shard's store.
func buildShardedMode(t *testing.T, seed int64, shards, workers int, fresh bool) *maintain.Sharded {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := corpus.Config{
		Departments:  3 + rng.Intn(5),
		EmpsPerDept:  2 + rng.Intn(3),
		ADeptsEveryN: 2,
	}
	db := corpus.NewDatabase(cfg)
	view := corpus.RandomView(rng, db)
	d, err := dag.FromTree(view)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Expand(rules.Default(), 300); err != nil {
		t.Fatal(err)
	}
	vs := tracks.RootSet(d)
	for _, e := range d.NonLeafEqs() {
		if !d.IsRoot(e) && rng.Intn(2) == 0 {
			vs[e.ID] = true
		}
	}
	s, err := maintain.NewSharded(modeFactory(seed, fresh), maintain.ShardedConfig{
		Shards:  shards,
		VS:      vs,
		Workers: workers,
	})
	if err != nil {
		t.Fatalf("seed %d shards %d fresh %v: %v", seed, shards, fresh, err)
	}
	return s
}

// TestRecycledVsFreshDifferential is the aliasing/leak obligation of
// cross-window recycling: every buffer the pipeline now reuses across
// windows — slab tuple slots, harvested free slots, report rows, delta
// and coalesce scratch — must be invisible in results. The same random
// transaction stream (window sizes 1–64) runs through engines in
// recycled mode and in fresh-alloc mode (slab + slot recycling
// disabled, every stored tuple its own heap clone), unsharded and at
// shards 1 and 4 with worker counts spread over 1–8, and every engine
// must stay byte-identical to a fresh-alloc per-transaction reference
// in contents, root-view violation count and recompute-oracle Drift.
// Run under -race this also shocks out unsynchronized scratch sharing
// between apply workers.
func TestRecycledVsFreshDifferential(t *testing.T) {
	trials := 6
	if testing.Short() {
		trials = 2
	}
	windowSizes := []int{1, 4, 16, 64}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			seed := int64(7600 + trial)
			// Per-transaction fresh-alloc reference: no batching, no
			// recycling — the most conservative allocation behavior.
			ref := buildMirrorMode(t, seed, true)

			type engine struct {
				name  string
				apply func([]txn.Transaction) error
				cont  func(*dag.EqNode) []storage.Row
				viol  func(*dag.EqNode) int64
				drift func(*dag.EqNode) (string, error)
			}
			var engines []engine
			addBatched := func(fresh bool, workers int) {
				mode := "recycled"
				if fresh {
					mode = "fresh"
				}
				m := buildMirrorMode(t, seed, fresh)
				m.m.Workers = workers
				engines = append(engines, engine{
					name:  fmt.Sprintf("batched-%s/workers%d", mode, workers),
					apply: func(w []txn.Transaction) error { _, err := m.m.ApplyBatch(w); return err },
					cont:  func(e *dag.EqNode) []storage.Row { return sortedContents(m.m, e) },
					viol:  func(e *dag.EqNode) int64 { return sumCounts(m.m.Contents(e)) },
					drift: func(e *dag.EqNode) (string, error) { return m.m.Drift(e) },
				})
			}
			addSharded := func(fresh bool, shards, workers int) {
				mode := "recycled"
				if fresh {
					mode = "fresh"
				}
				s := buildShardedMode(t, seed, shards, workers, fresh)
				engines = append(engines, engine{
					name:  fmt.Sprintf("sharded-%s/shards%d/workers%d", mode, shards, workers),
					apply: func(w []txn.Transaction) error { _, err := s.ApplyBatch(w); return err },
					cont:  s.Contents, // already cloned and sorted
					viol:  s.Violations,
					drift: s.Drift,
				})
			}
			addBatched(false, 1+trial%8)
			addBatched(true, 1+(trial+4)%8)
			addSharded(false, 1, 1+(trial+2)%8)
			addSharded(false, 4, 1+(trial+6)%8)
			addSharded(true, 1, 1+(trial+3)%8)
			addSharded(true, 4, 1+(trial+7)%8)

			txnRng := rand.New(rand.NewSource(seed*13 + 5))
			steps := 0
			for w := 0; w < 4; w++ {
				size := windowSizes[txnRng.Intn(len(windowSizes))]
				var window []txn.Transaction
				for i := 0; i < size; i++ {
					ty, updates := corpus.RandomTxn(txnRng, ref.db, ref.cfg, trial*1000+steps)
					steps++
					if ty == nil {
						continue
					}
					if _, err := ref.m.Apply(ty, updates); err != nil {
						t.Fatalf("window %d: reference %s: %v", w, ty.Name, err)
					}
					window = append(window, txn.Transaction{Type: ty, Updates: updates})
				}
				refViolations := sumCounts(ref.m.Contents(ref.checked[0]))
				for _, eng := range engines {
					if err := eng.apply(window); err != nil {
						t.Fatalf("window %d %s: %v", w, eng.name, err)
					}
					for i, e := range ref.checked {
						want := sortedContents(ref.m, e)
						got := eng.cont(e)
						if !rowsEqual(got, want) {
							t.Fatalf("window %d %s: node %d (%s) diverged\ngot:  %v\nwant: %v",
								w, eng.name, i, e, got, want)
						}
					}
					if got := eng.viol(ref.checked[0]); got != refViolations {
						t.Fatalf("window %d %s: violation count diverged: %d, reference %d",
							w, eng.name, got, refViolations)
					}
					if w%2 == 1 {
						for _, e := range ref.checked {
							drift, err := eng.drift(e)
							if err != nil {
								t.Fatal(err)
							}
							if drift != "" {
								t.Fatalf("window %d %s: node %s drifted from oracle (%s)",
									w, eng.name, e, drift)
							}
						}
					}
				}
			}
		})
	}
}

// TestEpochCheckFiresOnEscapedTuple proves the debug epoch check
// actually catches a window-ownership violation: a tuple handed out by
// an arena is deliberately held across the arena's Reset (the window
// fence) and then stored into a relation — the long-lived sink must
// panic rather than retain a pointer into retired window memory.
func TestEpochCheckFiresOnEscapedTuple(t *testing.T) {
	value.EnableEpochChecks(true)
	defer value.EnableEpochChecks(false)
	db := corpus.NewDatabase(corpus.Config{Departments: 2, EmpsPerDept: 2, ADeptsEveryN: 2})
	rel := db.Store.MustGet("Emp")

	var a value.Arena
	escaped := a.CloneTuple(value.Tuple{
		value.NewString("ghost"),
		value.NewString(corpus.DeptName(0)),
		value.NewInt(1),
	})
	a.Reset() // window ends; escaped now points into retired memory

	defer func() {
		if recover() == nil {
			t.Fatal("storing a tuple that escaped its window did not panic under epoch checks")
		}
	}()
	rel.Load([]storage.Row{{Tuple: escaped, Count: 1}})
}
