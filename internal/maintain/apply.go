package maintain

import (
	"fmt"
	"math"

	"repro/internal/algebra"
	"repro/internal/dag"
	"repro/internal/delta"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/tracks"
	"repro/internal/value"
)

// Registry mirrors of the per-transaction probe cache — the runtime
// counterpart of the track-level multi-query optimization. A high hit
// rate is the measured form of the sharing the cost model assumes when
// it charges each distinct query once per transaction.
var (
	obsProbeHits   = obs.C("maintain.probe.hits")
	obsProbeMisses = obs.C("maintain.probe.misses")
)

// opDelta computes the delta of one equivalence node through its chosen
// operation node, posing charged queries where the cost model charged
// them. The decision logic (which queries an operator needs) mirrors
// tracks.opFlow: joins probe the unaffected side; aggregates skip their
// group query when the parent is materialized with decomposable
// aggregates, or when the delta covers whole groups.
//
// st is the node's compiled plan step (may be nil); when present, the
// precompiled propagation plans replace per-call schema resolution and
// expression compilation.
func (m *Maintainer) opDelta(e *dag.EqNode, op *dag.OpNode, deltas map[int]*delta.Delta, tr *tracks.Track, w *windowMemo, st *planStep) (*delta.Delta, error) {
	childDelta := func(i int) *delta.Delta { return deltas[op.Children[i].ID] }
	switch t := op.Template.(type) {
	case *algebra.Select:
		if st != nil && st.sel != nil {
			return st.sel.Apply(childDelta(0))
		}
		return delta.Select(t, childDelta(0))

	case *algebra.Project:
		if st != nil && st.proj != nil {
			return st.proj.Apply(childDelta(0))
		}
		return delta.Project(t, childDelta(0))

	case *algebra.Join:
		dl, dr := childDelta(0), childDelta(1)
		probeL := m.probe(op.Children[0], t.LeftCols(), w)
		probeR := m.probe(op.Children[1], t.RightCols(), w)
		if st != nil && st.join != nil {
			switch {
			case !dl.Empty() && !dr.Empty():
				return st.join.ApplyBoth(dl, dr, probeL, probeR)
			case !dl.Empty():
				return st.join.Left.Apply(dl, probeR)
			case !dr.Empty():
				return st.join.Right.Apply(dr, probeL)
			default:
				return delta.New(t.Schema()), nil
			}
		}
		switch {
		case !dl.Empty() && !dr.Empty():
			return delta.JoinBoth(t, dl, dr, probeL, probeR)
		case !dl.Empty():
			return delta.JoinSide(t, dl, 0, probeR)
		case !dr.Empty():
			return delta.JoinSide(t, dr, 1, probeL)
		default:
			return delta.New(t.Schema()), nil
		}

	case *algebra.Aggregate:
		return m.aggregateDelta(e, op, t, deltas, tr, w, st)

	case *algebra.Distinct:
		cd := childDelta(0)
		countOf, err := m.countProbe(e, op.Children[0], w)
		if err != nil {
			return nil, err
		}
		return delta.Distinct(t, cd, countOf)

	case *algebra.Union:
		out := delta.New(t.Schema())
		for i := range op.Children {
			if cd := childDelta(i); !cd.Empty() {
				out.Changes = append(out.Changes, cd.Changes...)
			}
		}
		return out, nil

	case *algebra.Diff:
		countL, err := m.countProbe(e, op.Children[0], w)
		if err != nil {
			return nil, err
		}
		countR, err := m.countProbe(e, op.Children[1], w)
		if err != nil {
			return nil, err
		}
		out := delta.New(t.Schema())
		for i := range op.Children {
			cd := childDelta(i)
			if cd.Empty() {
				continue
			}
			part, err := delta.DiffSide(t, cd, i, countL, countR)
			if err != nil {
				return nil, err
			}
			out.Changes = append(out.Changes, part.Changes...)
		}
		return out.Normalize(), nil

	default:
		return nil, fmt.Errorf("maintain: unsupported operator %s", op.OpLabel())
	}
}

// aggregateDelta picks between the incremental (materialized parent,
// decomposable), covered (key-based, query-free) and full-group (queried)
// aggregate maintenance strategies — the same three-way decision the cost
// estimator prices.
func (m *Maintainer) aggregateDelta(e *dag.EqNode, op *dag.OpNode, agg *algebra.Aggregate, deltas map[int]*delta.Delta, tr *tracks.Track, w *windowMemo, st *planStep) (*delta.Delta, error) {
	child := op.Children[0]
	cd := deltas[child.ID]
	if cd.Empty() {
		return delta.New(agg.Schema()), nil
	}
	v := m.views[e.ID]
	tracked := v != nil && v.aggOp == op
	// The group-count map is only needed to detect stale groups (none in
	// steady state — the incremental path never marks any) and to resync
	// the sidecar on the cold full-group path below; computing it lazily
	// keeps the hot window free of per-group map and key churn.
	staleTouched := false
	if tracked && len(v.stale) > 0 {
		gcs, err := cd.GroupCounts(agg.GroupBy)
		if err != nil {
			return nil, err
		}
		for k := range gcs {
			if v.stale[k] {
				staleTouched = true
				break
			}
		}
	}
	if tracked && !staleTouched && delta.Decomposable(agg.Aggs, cd) {
		var (
			out  *delta.Delta
			live map[string]int64
			err  error
		)
		if st != nil && st.agg != nil {
			out, live, err = st.agg.Incremental(cd, m.oldAggProbe(v, agg))
		} else {
			out, live, err = delta.AggregateIncremental(agg, cd, m.oldAggProbe(v, agg))
		}
		if err != nil {
			return nil, err
		}
		v.pending = live
		return out, nil
	}
	childOp := tr.Choice[child.ID]
	deltaSide := -1
	if childOp != nil {
		for i, ch := range childOp.Children {
			if d, ok := deltas[ch.ID]; ok && !d.Empty() {
				if deltaSide >= 0 {
					deltaSide = -2
					break
				}
				deltaSide = i
			}
		}
	}
	var oldGroup func(value.Tuple) ([]storage.Row, error)
	if tracks.CoversGroups(m.D, agg, child, childOp, deltaSide) {
		fromDelta, err := delta.GroupRowsFromDelta(cd, agg.GroupBy)
		if err != nil {
			return nil, err
		}
		oldGroup = fromDelta
	} else {
		// Full-group recomputation with a charged query per affected
		// group (shared within the window through the memo).
		oldGroup = func(gk value.Tuple) ([]storage.Row, error) {
			return m.answerQuery(child, agg.GroupBy, gk, w)
		}
	}
	out, err := delta.AggregateFull(agg, cd, oldGroup)
	if err != nil {
		return nil, err
	}
	// Resync the sidecar for the groups this path recomputed: the
	// pre-update group rows are known, so the post-update live counts
	// are too — this also heals staleness.
	if tracked {
		gc, err := cd.GroupCounts(agg.GroupBy)
		if err != nil {
			return nil, err
		}
		keys, err := cd.AffectedKeys(agg.GroupBy)
		if err != nil {
			return nil, err
		}
		pending := map[string]int64{}
		for _, gk := range keys {
			rows, err := oldGroup(gk)
			if err != nil {
				return nil, err
			}
			var oldLive int64
			for _, r := range rows {
				oldLive += r.Count
			}
			k := gk.Key()
			pending[k] = oldLive + gc[k]
		}
		v.pending = pending
	}
	return out, nil
}

// oldAggProbe reads a group's stored output tuple and live count without
// charging I/O: the paper folds the old-value read into the view's update
// cost (read old + write new), which ApplyBatch charges.
func (m *Maintainer) oldAggProbe(v *View, agg *algebra.Aggregate) delta.OldAgg {
	nGroup := len(agg.GroupBy)
	cols := make([]string, nGroup)
	copy(cols, v.Eq.Schema().ColumnNames()[:nGroup])
	var enc value.KeyEncoder
	return func(gk value.Tuple) (value.Tuple, int64, bool, error) {
		was := v.Rel.Resident
		v.Rel.Resident = true
		rows := v.Rel.Lookup(cols, gk)
		v.Rel.Resident = was
		if len(rows) == 0 {
			return nil, 0, false, nil
		}
		return rows[0].Tuple, v.live[string(enc.Key(gk))], true, nil
	}
}

// probe builds a join probe answering from the pre-update state of an
// equivalence node, charged.
func (m *Maintainer) probe(target *dag.EqNode, cols []string, w *windowMemo) delta.Probe {
	return func(jk value.Tuple) ([]storage.Row, error) {
		return m.answerQuery(target, cols, jk, w)
	}
}

// countProbe answers multiplicity questions for Distinct/Diff: from the
// sidecar when this node's view tracks them, else by a charged point
// query on the child.
func (m *Maintainer) countProbe(parent *dag.EqNode, child *dag.EqNode, w *windowMemo) (delta.CountProbe, error) {
	cols := child.Schema().ColumnNames()
	query := func(t value.Tuple) (int64, error) {
		rows, err := m.answerQuery(child, cols, t, w)
		if err != nil {
			return 0, err
		}
		var n int64
		for _, r := range rows {
			n += r.Count
		}
		return n, nil
	}
	if v := m.views[parent.ID]; v != nil && (v.distinctOp != nil || v.aggOp != nil) {
		var enc value.KeyEncoder
		return func(t value.Tuple) (int64, error) {
			kb := enc.Key(t)
			if v.stale[string(kb)] {
				k := string(kb)
				// Liveness unknown (the view was last maintained through
				// another operation alternative): query and heal.
				n, err := query(t)
				if err != nil {
					return 0, err
				}
				v.live[k] = n
				delete(v.stale, k)
				return n, nil
			}
			return v.live[string(kb)], nil
		}, nil
	}
	return query, nil
}

// answerQuery answers σ[cols = key](target) against the pre-update
// database, charged, using the materialized view set: a materialized
// target is probed through its index; otherwise the cheapest
// view-aware expression tree is evaluated with the filter pushed down.
// Results are shared through the window memo, keyed by the target's
// structural fingerprint — the runtime counterpart of the track-level
// multi-query optimization (queries posed by more than one consumer
// along the track are answered once per window).
func (m *Maintainer) answerQuery(target *dag.EqNode, cols []string, key value.Tuple, w *windowMemo) ([]storage.Row, error) {
	ckb := m.memoKey(make([]byte, 0, 64), target, cols, key)
	if rows, ok := w.get(ckb); ok {
		obsProbeHits.Inc()
		return rows, nil
	}
	obsProbeMisses.Inc()
	ck := string(ckb)
	var rows []storage.Row
	if target.IsLeaf() {
		rel, ok := m.Store.Get(target.BaseRel)
		if !ok {
			return nil, fmt.Errorf("maintain: relation %q not stored", target.BaseRel)
		}
		rows = w.lookup(rel, cols, key)
	} else if v := m.views[target.ID]; v != nil {
		rows = w.lookup(v.Rel, cols, key)
	} else {
		tree := m.queryTree(target)
		ev := exec.New(m.Store)
		ev.Memo = w.eval
		// Join outputs come from the window arena: the rows land in the
		// window memo and in deltas, both of which die at the next Reset.
		ev.Win = &m.arena
		res, err := ev.EvalFiltered(tree, cols, key)
		if err != nil {
			return nil, err
		}
		rows = res.Rows
	}
	w.put(ck, rows)
	return rows, nil
}

// queryTree builds (and memoizes) the cheapest view-aware evaluation tree
// for a non-materialized equivalence node: materialized descendants
// become scans of their backing stores; below that, each class picks the
// operation minimizing estimated full-evaluation cost.
func (m *Maintainer) queryTree(e *dag.EqNode) algebra.Node {
	if t, ok := m.trees[e.ID]; ok {
		return t
	}
	t := m.buildQueryTree(e, map[int]bool{})
	m.trees[e.ID] = t
	return t
}

func (m *Maintainer) buildQueryTree(e *dag.EqNode, onPath map[int]bool) algebra.Node {
	if e.IsLeaf() {
		return e.Expr
	}
	if v := m.views[e.ID]; v != nil {
		return algebra.Scan(v.Rel.Def)
	}
	if onPath[e.ID] {
		// Cycle through rewrites; fall back to the representative op.
		onPath = map[int]bool{}
	}
	onPath[e.ID] = true
	defer delete(onPath, e.ID)
	var best *dag.OpNode
	bestCost := math.Inf(1)
	for _, op := range e.Ops {
		var sum float64
		for _, ch := range op.Children {
			sum += m.Cost.EvalCost(ch, m.VS)
		}
		if sum < bestCost {
			bestCost = sum
			best = op
		}
	}
	children := make([]algebra.Node, len(best.Children))
	for i, ch := range best.Children {
		children[i] = m.buildQueryTree(ch, onPath)
	}
	return best.Template.WithChildren(children)
}
