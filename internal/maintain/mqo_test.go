package maintain_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/delta"
	"repro/internal/maintain"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/tracks"
	"repro/internal/txn"
	"repro/internal/value"
)

// The MQO equivalence property: sharing subplan results through the
// per-window memo is invisible in view contents. Three engines must
// agree on every materialized node after every window —
//
//   - shared:   the default pipeline, window memo on;
//   - unshared: DisableMQO, so every probe is answered per-node from
//     storage (the per-query oracle the memo claims to equal);
//   - serial:   per-transaction Apply (no window at all);
//
// and all three must match full recomputation (Drift).

// mqoWindowSizes spans the batching range the tentpole targets.
var mqoWindowSizes = []int{1, 3, 16, 64}

func assertMirrorsAgree(t *testing.T, label string, shared, unshared *mirror) {
	t.Helper()
	for i := range shared.checked {
		es, eu := shared.checked[i], unshared.checked[i]
		if es.ID != eu.ID {
			t.Fatalf("%s: mirrors diverged structurally: node ids %d vs %d", label, es.ID, eu.ID)
		}
		want := sortedContents(unshared.m, eu)
		got := sortedContents(shared.m, es)
		if !rowsEqual(got, want) {
			t.Fatalf("%s: node %s diverged\nmemo-shared: %v\nunshared:    %v", label, es, got, want)
		}
		drift, err := shared.m.Drift(es)
		if err != nil {
			t.Fatal(err)
		}
		if drift != "" {
			t.Fatalf("%s: node %s drifted from full recompute (%s)", label, es, drift)
		}
	}
}

// TestMQOEquivalenceRandom runs the property on random view DAGs with
// random additional view sets, random windows and worker counts 1–8.
func TestMQOEquivalenceRandom(t *testing.T) {
	trials := 30
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			seed := int64(21000 + trial)
			serial := buildMirror(t, seed)
			shared := buildMirror(t, seed)
			unshared := buildMirror(t, seed)
			unshared.m.DisableMQO = true
			shared.m.Workers = 1 + trial%8
			unshared.m.Workers = 1 + (trial+3)%8

			txnRng := rand.New(rand.NewSource(seed*13 + 1))
			steps := 0
			for w, size := range mqoWindowSizes {
				var window []txn.Transaction
				for i := 0; i < size; i++ {
					ty, updates := corpus.RandomTxn(txnRng, serial.db, serial.cfg, trial*1000+steps)
					steps++
					if ty == nil {
						continue
					}
					if _, err := serial.m.Apply(ty, updates); err != nil {
						t.Fatalf("window %d: serial %s: %v", w, ty.Name, err)
					}
					window = append(window, txn.Transaction{Type: ty, Updates: updates})
				}
				if _, err := shared.m.ApplyBatch(window); err != nil {
					t.Fatalf("window %d shared: %v", w, err)
				}
				if _, err := unshared.m.ApplyBatch(window); err != nil {
					t.Fatalf("window %d unshared: %v", w, err)
				}
				label := fmt.Sprintf("window %d (%d txns)", w, len(window))
				assertMirrorsAgree(t, label, shared, unshared)
				// The serial baseline closes the triangle.
				for i := range serial.checked {
					want := sortedContents(serial.m, serial.checked[i])
					got := sortedContents(shared.m, shared.checked[i])
					if !rowsEqual(got, want) {
						t.Fatalf("%s: node %s: batched+memo diverged from per-transaction",
							label, shared.checked[i])
					}
				}
			}
		})
	}
}

// fig5Mirror is one Figure 5 engine with every non-leaf node
// materialized (the throughput harness's configuration).
type fig5Mirror struct {
	db      *corpus.Database
	m       *maintain.Maintainer
	checked []*dag.EqNode
}

func buildFig5Mirror(t *testing.T, cfg corpus.Figure5Config, workers int) *fig5Mirror {
	t.Helper()
	db := corpus.Figure5Database(cfg)
	d, err := dag.FromTree(db.Figure5View(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Expand(rules.Default(), 400); err != nil {
		t.Fatal(err)
	}
	vs := tracks.RootSet(d)
	checked := d.NonLeafEqs()
	for _, e := range checked {
		vs[e.ID] = true
	}
	m, err := maintain.New(d, db.Store, cost.PageIO{}, vs)
	if err != nil {
		t.Fatal(err)
	}
	m.Workers = workers
	return &fig5Mirror{db: db, m: m, checked: checked}
}

// fig5Stream deterministically generates the hot-item workload (80%
// T price modifies / 20% S inserts) without consulting database state,
// so one stream drives any number of identically-seeded engines.
type fig5Stream struct {
	db    *corpus.Database
	hot   []string
	price map[string]int64
	seq   int
	modT  *txn.Type
	insS  *txn.Type
}

func newFig5Stream(db *corpus.Database, hotN int) *fig5Stream {
	s := &fig5Stream{
		db:    db,
		price: map[string]int64{},
		modT: &txn.Type{Name: ">T", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "T", Kind: txn.Modify, Size: 1, Cols: []string{"Price"}}}},
		insS: &txn.Type{Name: "+S", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "S", Kind: txn.Insert, Size: 1}}},
	}
	for i := 0; i < hotN; i++ {
		item := fmt.Sprintf("item%03d", i)
		s.hot = append(s.hot, item)
		s.price[item] = int64(10 + i%7) // matches Figure5Database seeding
	}
	return s
}

func (s *fig5Stream) next() txn.Transaction {
	seq := s.seq
	s.seq++
	if seq%5 == 4 {
		d := delta.New(s.db.Catalog.MustGet("S").Schema)
		d.Insert(value.Tuple{
			value.NewString(fmt.Sprintf("mq%06d", seq)),
			value.NewString(s.hot[(seq*3)%len(s.hot)]),
			value.NewInt(int64(1 + seq%5)),
		}, 1)
		return txn.Transaction{Type: s.insS, Updates: map[string]*delta.Delta{"S": d}}
	}
	item := s.hot[seq%len(s.hot)]
	old := s.price[item]
	next := int64(10 + (seq*7+3)%97)
	if next == old {
		next++
	}
	s.price[item] = next
	d := delta.New(s.db.Catalog.MustGet("T").Schema)
	d.Modify(
		value.Tuple{value.NewString(item), value.NewInt(old)},
		value.Tuple{value.NewString(item), value.NewInt(next)},
		1)
	return txn.Transaction{Type: s.modT, Updates: map[string]*delta.Delta{"T": d}}
}

// TestMQOEquivalenceFigure5 runs the property on the paper's Figure 5
// instance under the hot-item workload, and pins the counters: the
// merged batch track poses shared queries, so the memo must record hits
// when enabled and none when disabled.
func TestMQOEquivalenceFigure5(t *testing.T) {
	cfg := corpus.Figure5Config{Items: 24, RPerItem: 3, SPerItem: 3}
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			shared := buildFig5Mirror(t, cfg, workers)
			unshared := buildFig5Mirror(t, cfg, 1)
			unshared.m.DisableMQO = true
			stream := newFig5Stream(shared.db, 6)

			hits := obs.C("maintain.mqo.memo_hits")
			hits0 := hits.Value()
			for w, size := range mqoWindowSizes {
				window := make([]txn.Transaction, size)
				for i := range window {
					window[i] = stream.next()
				}
				if _, err := shared.m.ApplyBatch(window); err != nil {
					t.Fatalf("window %d shared: %v", w, err)
				}
				sharedDelta := hits.Value() - hits0
				if _, err := unshared.m.ApplyBatch(window); err != nil {
					t.Fatalf("window %d unshared: %v", w, err)
				}
				if got := hits.Value() - hits0; got != sharedDelta {
					t.Fatalf("window %d: DisableMQO engine recorded %d memo hits", w, got-sharedDelta)
				}
				assertMirrorsAgree(t, fmt.Sprintf("window %d (%d txns)", w, size), &mirror{
					m:       shared.m,
					checked: shared.checked,
				}, &mirror{m: unshared.m, checked: unshared.checked})
			}
			if got := hits.Value() - hits0; got <= 0 {
				t.Fatalf("merged Figure 5 track poses shared queries, but memo recorded %d hits", got)
			}
		})
	}
}

// TestMQOEquivalenceSumOfSals runs the property on Example 1.1's
// ProblemDeptAlt, whose rep tree routes through the SumOfSals
// aggregate — the paper's canonical additional view.
func TestMQOEquivalenceSumOfSals(t *testing.T) {
	build := func(workers int) (*corpus.Database, *maintain.Maintainer, []*dag.EqNode) {
		db := corpus.NewDatabase(corpus.Config{Departments: 6, EmpsPerDept: 4, ADeptsEveryN: 2})
		d, err := dag.FromTree(db.ProblemDeptAlt())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Expand(rules.Default(), 300); err != nil {
			t.Fatal(err)
		}
		vs := tracks.RootSet(d)
		checked := d.NonLeafEqs()
		for _, e := range checked {
			vs[e.ID] = true
		}
		m, err := maintain.New(d, db.Store, cost.PageIO{}, vs)
		if err != nil {
			t.Fatal(err)
		}
		m.Workers = workers
		return db, m, checked
	}
	cfg := corpus.Config{Departments: 6, EmpsPerDept: 4, ADeptsEveryN: 2}
	// The generator engine applies each transaction as it is drawn, so
	// window deltas chain (a modify's old tuple is the previous new one)
	// and the window composes validly against its start state.
	serialDB, serialM, _ := build(1)
	_, sharedM, checked := build(4)
	_, unsharedM, _ := build(1)
	unsharedM.DisableMQO = true

	txnRng := rand.New(rand.NewSource(31337))
	steps := 0
	for w, size := range mqoWindowSizes {
		var window []txn.Transaction
		for i := 0; i < size; i++ {
			ty, updates := corpus.RandomTxn(txnRng, serialDB, cfg, steps)
			steps++
			if ty == nil {
				continue
			}
			if _, err := serialM.Apply(ty, updates); err != nil {
				t.Fatalf("window %d: serial %s: %v", w, ty.Name, err)
			}
			window = append(window, txn.Transaction{Type: ty, Updates: updates})
		}
		if _, err := sharedM.ApplyBatch(window); err != nil {
			t.Fatalf("window %d shared: %v", w, err)
		}
		if _, err := unsharedM.ApplyBatch(window); err != nil {
			t.Fatalf("window %d unshared: %v", w, err)
		}
		assertMirrorsAgree(t, fmt.Sprintf("window %d (%d txns)", w, len(window)),
			&mirror{m: sharedM, checked: checked},
			&mirror{m: unsharedM, checked: checked})
	}
}
