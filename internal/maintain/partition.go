package maintain

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/dag"
	"repro/internal/expr"
	"repro/internal/tracks"
	"repro/internal/value"
)

// ShardClass classifies a materialized view's relationship to a
// hash partitioning of the base relations on one column.
type ShardClass int

const (
	// ShardLocal views decompose exactly: the global view is the bag
	// union of the per-shard views, because every tuple that could
	// contribute to one output row lives on one shard.
	ShardLocal ShardClass = iota
	// ShardSpanning views are aggregates whose group keys are spread
	// across shards; each shard holds partial aggregates and a merge
	// stage combines them (SUM/COUNT add, MIN/MAX compare).
	ShardSpanning
	// ShardInvalid views cannot be maintained shard-locally under the
	// partitioning; their presence forces the fallback to one shard.
	ShardInvalid
)

// String names the class for reports.
func (c ShardClass) String() string {
	switch c {
	case ShardLocal:
		return "local"
	case ShardSpanning:
		return "spanning"
	default:
		return "invalid"
	}
}

// ViewPartition is the per-view outcome of partition analysis.
type ViewPartition struct {
	Class  ShardClass
	Reason string // why invalid ("" otherwise)

	// Spanning views only: the output prefix [0, NGroup) is the group
	// key and Aggs describes how to combine the remaining columns.
	NGroup int
	Aggs   []algebra.AggSpec
}

// Partitioning is the analysis of one DAG + view set against a hash
// partitioning of the base relations on Column into Shards shards.
// When any materialized view is ShardInvalid the analysis records the
// first reason and Effective falls back to 1 (a single shard holding
// everything is trivially correct); otherwise Effective == Shards.
type Partitioning struct {
	Column    string
	Shards    int
	Effective int
	Reason    string

	// Views maps each materialized eq ID to its class.
	Views map[int]ViewPartition

	// basePos maps each base relation to the position of Column in its
	// schema, or -1 when the relation lacks the column and routes by
	// whole-tuple hash (equal tuples still collocate, which is all
	// locality a column-free relation can need).
	basePos map[string]int
}

// carry is the recursive analysis state: the class of a subtree plus
// the output column positions whose value always equals the row's
// partition-column value (the positions locality proofs rest on).
type carry struct {
	class  ShardClass
	pos    []int
	reason string
	agg    *algebra.Aggregate // set when class == ShardSpanning
}

func invalidCarry(format string, args ...any) carry {
	return carry{class: ShardInvalid, reason: fmt.Sprintf(format, args...)}
}

func analyzeNode(n algebra.Node, col string) carry {
	switch t := n.(type) {
	case *algebra.Rel:
		c := carry{class: ShardLocal}
		if col != "" {
			for j, sc := range t.Def.Schema.Cols {
				if sc.Name == col {
					c.pos = append(c.pos, j)
				}
			}
		}
		return c

	case *algebra.Select:
		in := analyzeNode(t.Input, col)
		if in.class != ShardLocal {
			if in.class == ShardSpanning {
				return invalidCarry("selection above a spanning aggregate reads partial aggregates")
			}
			return in
		}
		return in // schema unchanged, positions carry through

	case *algebra.Project:
		in := analyzeNode(t.Input, col)
		if in.class != ShardLocal {
			if in.class == ShardSpanning {
				return invalidCarry("projection above a spanning aggregate reads partial aggregates")
			}
			return in
		}
		out := carry{class: ShardLocal}
		schema := t.Input.Schema()
		for i, it := range t.Items {
			c, ok := it.E.(expr.Col)
			if !ok {
				continue
			}
			j, err := schema.Resolve(c.Name)
			if err != nil {
				continue
			}
			if containsInt(in.pos, j) {
				out.pos = append(out.pos, i)
			}
		}
		return out

	case *algebra.Join:
		l := analyzeNode(t.L, col)
		if l.class != ShardLocal {
			return invalidCarry("left join input is not shard-local (%s)", l.reason)
		}
		r := analyzeNode(t.R, col)
		if r.class != ShardLocal {
			return invalidCarry("right join input is not shard-local (%s)", r.reason)
		}
		ls, rs := t.L.Schema(), t.R.Schema()
		matched := false
		for _, cond := range t.On {
			lp, rp, ok := resolveCond(ls, rs, cond)
			if !ok {
				continue
			}
			if containsInt(l.pos, lp) && containsInt(r.pos, rp) {
				matched = true
				break
			}
		}
		if !matched {
			return invalidCarry("no join condition equates the partition column %q on both sides", col)
		}
		out := carry{class: ShardLocal, pos: append([]int{}, l.pos...)}
		off := ls.Len()
		for _, p := range r.pos {
			out.pos = append(out.pos, off+p)
		}
		return out

	case *algebra.Aggregate:
		in := analyzeNode(t.Input, col)
		if in.class != ShardLocal {
			if in.class == ShardSpanning {
				return invalidCarry("aggregate above a spanning aggregate re-aggregates partial aggregates")
			}
			return in
		}
		schema := t.Input.Schema()
		out := carry{class: ShardLocal}
		for gi, g := range t.GroupBy {
			j, err := schema.Resolve(g)
			if err != nil {
				continue
			}
			if containsInt(in.pos, j) {
				out.pos = append(out.pos, gi)
			}
		}
		if len(out.pos) > 0 {
			return out // grouping on the partition column keeps groups whole
		}
		for _, ag := range t.Aggs {
			switch ag.Func {
			case algebra.Sum, algebra.Count, algebra.Min, algebra.Max:
			default:
				return invalidCarry("aggregate %s cannot be merged from per-shard partials", ag.Func)
			}
		}
		return carry{class: ShardSpanning, agg: t}

	case *algebra.Distinct:
		in := analyzeNode(t.Children()[0], col)
		if in.class != ShardLocal {
			if in.class == ShardSpanning {
				return invalidCarry("distinct above a spanning aggregate reads partial aggregates")
			}
			return in
		}
		if len(in.pos) == 0 {
			return invalidCarry("DISTINCT input does not carry the partition column; duplicates may span shards")
		}
		return in

	default:
		return invalidCarry("operator %s is not supported under sharding", n.Kind())
	}
}

// resolveCond resolves a join condition's columns against the left and
// right input schemas, trying the swapped orientation when the literal
// one fails.
func resolveCond(ls, rs *catalog.Schema, cond algebra.JoinCond) (lp, rp int, ok bool) {
	if l, err := ls.Resolve(cond.Left); err == nil {
		if r, err := rs.Resolve(cond.Right); err == nil {
			return l, r, true
		}
	}
	if l, err := ls.Resolve(cond.Right); err == nil {
		if r, err := rs.Resolve(cond.Left); err == nil {
			return l, r, true
		}
	}
	return 0, 0, false
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// AnalyzePartitioning classifies every materialized view of vs against
// a hash partitioning on col into shards shards. A spanning aggregate
// is only mergeable when it is the root of its own rep tree — any
// operator above it would compute over partial aggregates — which the
// recursion enforces by invalidating operators over spanning inputs.
func AnalyzePartitioning(d *dag.DAG, vs tracks.ViewSet, col string, shards int) *Partitioning {
	p := &Partitioning{
		Column:    col,
		Shards:    shards,
		Effective: shards,
		Views:     map[int]ViewPartition{},
		basePos:   map[string]int{},
	}
	if shards < 1 {
		p.Shards, p.Effective = 1, 1
	}
	for _, e := range d.Eqs() {
		if !e.IsLeaf() {
			continue
		}
		rel, ok := d.RepTree(e).(*algebra.Rel)
		if !ok {
			continue
		}
		pos := -1
		if col != "" {
			for j, sc := range rel.Def.Schema.Cols {
				if sc.Name == col {
					pos = j
					break
				}
			}
		}
		p.basePos[e.BaseRel] = pos
	}
	for _, e := range d.NonLeafEqs() {
		if !vs[e.ID] {
			continue
		}
		c := analyzeNode(d.RepTree(e), col)
		vp := ViewPartition{Class: c.class, Reason: c.reason}
		if c.class == ShardSpanning {
			vp.NGroup = len(c.agg.GroupBy)
			vp.Aggs = c.agg.Aggs
		}
		p.Views[e.ID] = vp
		if c.class == ShardInvalid && p.Reason == "" {
			p.Reason = fmt.Sprintf("%s: %s", e, c.reason)
		}
	}
	if p.Reason != "" {
		p.Effective = 1
	}
	return p
}

// ChoosePartitionColumn picks the bare column name that keeps the most
// materialized views shard-local while invalidating none, preferring
// the lexicographically smallest on ties. It returns "" when no column
// admits a valid partitioning (callers then fall back to one shard).
func ChoosePartitionColumn(d *dag.DAG, vs tracks.ViewSet) string {
	seen := map[string]bool{}
	var cands []string
	for _, e := range d.Eqs() {
		if !e.IsLeaf() {
			continue
		}
		rel, ok := d.RepTree(e).(*algebra.Rel)
		if !ok {
			continue
		}
		for _, sc := range rel.Def.Schema.Cols {
			if !seen[sc.Name] {
				seen[sc.Name] = true
				cands = append(cands, sc.Name)
			}
		}
	}
	sort.Strings(cands)
	best, bestScore := "", -1
	for _, cand := range cands {
		an := AnalyzePartitioning(d, vs, cand, 2)
		if an.Reason != "" {
			continue
		}
		score := 0
		for _, vp := range an.Views {
			if vp.Class == ShardLocal {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = cand, score
		}
	}
	return best
}

// Describe renders the analysis for logs and Explain output.
func (p *Partitioning) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "partition by %q into %d shards (effective %d)", p.Column, p.Shards, p.Effective)
	if p.Reason != "" {
		fmt.Fprintf(&b, "; fallback: %s", p.Reason)
	}
	return b.String()
}

// Router routes base-relation tuples to shards by an FNV-1a hash of the
// partition column's key encoding (whole-tuple encoding for relations
// without the column). Routing is a pure function of the tuple bytes —
// value.KeyEncoder output is byte-identical to Tuple.Key — so the same
// tuple lands on the same shard in every window, every process and at
// recovery. Not safe for concurrent use (one reused key buffer); the
// window splitter routes single-threaded before fanning out.
type Router struct {
	n   int
	pos map[string]int
	enc value.KeyEncoder
	one [1]int
}

// NewRouter builds the router for the analysis at its effective shard
// count.
func (p *Partitioning) NewRouter() *Router {
	return &Router{n: p.Effective, pos: p.basePos}
}

// Shards returns the router's shard count.
func (r *Router) Shards() int { return r.n }

// Route maps one tuple of rel to a shard in [0, n). Relations unknown
// to the analysis route by whole-tuple hash, keeping Route total.
func (r *Router) Route(rel string, t value.Tuple) int {
	if r.n <= 1 {
		return 0
	}
	pos, ok := r.pos[rel]
	var key []byte
	if ok && pos >= 0 && pos < len(t) {
		r.one[0] = pos
		key = r.enc.ProjectedKey(t, r.one[:])
	} else {
		key = r.enc.Key(t)
	}
	return int(fnv1a(key) % uint64(r.n))
}

// fnv1a is the 64-bit FNV-1a hash of key.
func fnv1a(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}
