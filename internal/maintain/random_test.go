package maintain_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/corpus"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/delta"
	"repro/internal/expr"
	"repro/internal/maintain"
	"repro/internal/rules"
	"repro/internal/tracks"
	"repro/internal/txn"
	"repro/internal/value"
)

// randomView builds a random view over the corporate schema: a join
// subset of {Emp, Dept, ADepts} on DName, optional selection, optional
// aggregation, optional projection. Every generated view is valid by
// construction.
func randomView(rng *rand.Rand, db *corpus.Database) algebra.Node {
	emp := algebra.Scan(db.Catalog.MustGet("Emp"))
	dept := algebra.Scan(db.Catalog.MustGet("Dept"))
	adepts := algebra.Scan(db.Catalog.MustGet("ADepts"))

	var tree algebra.Node
	switch rng.Intn(4) {
	case 0:
		tree = emp
	case 1:
		tree = algebra.NewJoin(
			[]algebra.JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}}, emp, dept)
	case 2:
		tree = algebra.NewJoin(
			[]algebra.JoinCond{{Left: "Emp.DName", Right: "ADepts.DName"}}, emp, adepts)
	default:
		inner := algebra.NewJoin(
			[]algebra.JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}}, emp, dept)
		tree = algebra.NewJoin(
			[]algebra.JoinCond{{Left: "Emp.DName", Right: "ADepts.DName"}}, inner, adepts)
	}
	if rng.Intn(2) == 0 {
		tree = algebra.NewSelect(
			expr.Compare(expr.GT, expr.C("Emp.Salary"), expr.IntLit(int64(rng.Intn(150)))),
			tree)
	}
	switch rng.Intn(3) {
	case 0:
		// SUM+COUNT aggregate by department.
		group := []string{"Emp.DName"}
		if tree.Schema().Has("Dept.Budget") && rng.Intn(2) == 0 {
			group = append(group, "Dept.Budget")
		}
		tree = algebra.NewAggregate(group,
			[]algebra.AggSpec{
				{Func: algebra.Sum, Arg: expr.C("Emp.Salary"), As: "S"},
				{Func: algebra.Count, As: "N"},
			}, tree)
		if rng.Intn(2) == 0 {
			tree = algebra.NewSelect(expr.Compare(expr.GT, expr.C("S"), expr.IntLit(0)), tree)
		}
	case 1:
		// Projection to department names (bag), optionally distinct.
		tree = algebra.NewProject(
			[]algebra.ProjectItem{{E: expr.C("Emp.DName")}}, tree)
		if rng.Intn(2) == 0 {
			tree = algebra.NewDistinct(tree)
		}
	}
	// A view must be a derived relation, not a bare base scan.
	if tree.Kind() == algebra.KindRel {
		tree = algebra.NewSelect(
			expr.Compare(expr.GE, expr.C("Emp.Salary"), expr.IntLit(0)), tree)
	}
	return tree
}

// randomTxn builds a random single-relation transaction against the
// current database state. Returns nil when the intended victim is gone.
func randomTxn(rng *rand.Rand, db *corpus.Database, cfg corpus.Config, seq int) (*txn.Type, map[string]*delta.Delta) {
	switch rng.Intn(6) {
	case 0: // salary modify
		d, err := db.EmpSalaryDelta(rng.Intn(cfg.Departments), rng.Intn(cfg.EmpsPerDept), int64(50+rng.Intn(300)))
		if err != nil {
			return nil, nil
		}
		return &txn.Type{Name: ">Emp", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "Emp", Kind: txn.Modify, Size: 1, Cols: []string{"Salary"}}}}, map[string]*delta.Delta{"Emp": d}
	case 1: // budget modify
		d, err := db.DeptBudgetDelta(rng.Intn(cfg.Departments), int64(500+rng.Intn(3000)))
		if err != nil {
			return nil, nil
		}
		return &txn.Type{Name: ">Dept", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "Dept", Kind: txn.Modify, Size: 1, Cols: []string{"Budget"}}}}, map[string]*delta.Delta{"Dept": d}
	case 2: // hire (sometimes into a brand-new department)
		dept := corpus.DeptName(rng.Intn(cfg.Departments))
		if rng.Intn(4) == 0 {
			dept = fmt.Sprintf("dnew%d", seq)
		}
		d := db.EmpInsertDelta(fmt.Sprintf("hire%d", seq), dept, int64(60+rng.Intn(200)))
		return &txn.Type{Name: "+Emp", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "Emp", Kind: txn.Insert, Size: 1}}}, map[string]*delta.Delta{"Emp": d}
	case 3: // fire
		d, err := db.EmpDeleteDelta(rng.Intn(cfg.Departments), rng.Intn(cfg.EmpsPerDept))
		if err != nil {
			return nil, nil
		}
		return &txn.Type{Name: "-Emp", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "Emp", Kind: txn.Delete, Size: 1}}}, map[string]*delta.Delta{"Emp": d}
	case 4: // reclassify a department as type A
		// DName is a declared key of ADepts; the engine's key-based
		// optimizations (CoversGroups, aggregate pushdown) trust declared
		// keys, so the workload must not violate them — skip departments
		// already classified.
		name := corpus.DeptName(rng.Intn(cfg.Departments))
		rel := db.Store.MustGet("ADepts")
		was := rel.Resident
		rel.Resident = true
		existing := rel.Lookup([]string{"DName"}, value.Tuple{value.NewString(name)})
		rel.Resident = was
		if len(existing) > 0 {
			return nil, nil
		}
		d := db.ADeptsInsertDelta(name)
		return &txn.Type{Name: "+ADepts", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "ADepts", Kind: txn.Insert, Size: 1}}}, map[string]*delta.Delta{"ADepts": d}
	default: // move an employee to another department (join-key change!)
		i, j := rng.Intn(cfg.Departments), rng.Intn(cfg.EmpsPerDept)
		rel := db.Store.MustGet("Emp")
		was := rel.Resident
		rel.Resident = true
		rows := rel.Lookup([]string{"EName"}, value.Tuple{value.NewString(corpus.EmpName(i, j))})
		rel.Resident = was
		if len(rows) == 0 {
			return nil, nil
		}
		old := rows[0].Tuple.Clone()
		newT := old.Clone()
		newT[1] = value.NewString(corpus.DeptName(rng.Intn(cfg.Departments)))
		if newT.Equal(old) {
			return nil, nil
		}
		d := delta.New(rel.Def.Schema)
		d.Modify(old, newT, 1)
		return &txn.Type{Name: ">EmpDept", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "Emp", Kind: txn.Modify, Size: 1, Cols: []string{"DName"}}}}, map[string]*delta.Delta{"Emp": d}
	}
}

// TestRandomizedEndToEnd is the system-level soundness property: for
// random views, random materialized view sets and random transaction
// streams, every materialized node always equals full recomputation.
func TestRandomizedEndToEnd(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			cfg := corpus.Config{
				Departments: 3 + rng.Intn(5),
				EmpsPerDept: 2 + rng.Intn(3),
				ADeptsEveryN: 2,
			}
			db := corpus.NewDatabase(cfg)
			view := randomView(rng, db)
			d, err := dag.FromTree(view)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d.Expand(rules.Default(), 300); err != nil {
				t.Fatal(err)
			}
			// Random additional view set.
			vs := tracks.RootSet(d)
			var marked []*dag.EqNode
			for _, e := range d.NonLeafEqs() {
				if !d.IsRoot(e) && rng.Intn(2) == 0 {
					vs[e.ID] = true
					marked = append(marked, e)
				}
			}
			m, err := maintain.New(d, db.Store, cost.PageIO{}, vs)
			if err != nil {
				t.Fatalf("view %s: %v", view.Label(), err)
			}
			for step := 0; step < 25; step++ {
				ty, updates := randomTxn(rng, db, cfg, trial*100+step)
				if ty == nil {
					continue
				}
				if _, err := m.Apply(ty, updates); err != nil {
					t.Fatalf("step %d (%s) on view %s: %v", step, ty.Name, view.Label(), err)
				}
				for _, e := range append([]*dag.EqNode{d.Root}, marked...) {
					drift, err := m.Drift(e)
					if err != nil {
						t.Fatal(err)
					}
					if drift != "" {
						t.Fatalf("step %d (%s): node %s drifted (%s)\nview: %s\nset: %s",
							step, ty.Name, e, drift, view.Label(), vs.Key())
					}
				}
			}
		})
	}
}
