package maintain_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/maintain"
	"repro/internal/rules"
	"repro/internal/tracks"
)

// TestRandomizedEndToEnd is the system-level soundness property: for
// random views, random materialized view sets and random transaction
// streams, every materialized node always equals full recomputation.
func TestRandomizedEndToEnd(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			cfg := corpus.Config{
				Departments:  3 + rng.Intn(5),
				EmpsPerDept:  2 + rng.Intn(3),
				ADeptsEveryN: 2,
			}
			db := corpus.NewDatabase(cfg)
			view := corpus.RandomView(rng, db)
			d, err := dag.FromTree(view)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d.Expand(rules.Default(), 300); err != nil {
				t.Fatal(err)
			}
			// Random additional view set.
			vs := tracks.RootSet(d)
			var marked []*dag.EqNode
			for _, e := range d.NonLeafEqs() {
				if !d.IsRoot(e) && rng.Intn(2) == 0 {
					vs[e.ID] = true
					marked = append(marked, e)
				}
			}
			m, err := maintain.New(d, db.Store, cost.PageIO{}, vs)
			if err != nil {
				t.Fatalf("view %s: %v", view.Label(), err)
			}
			for step := 0; step < 25; step++ {
				ty, updates := corpus.RandomTxn(rng, db, cfg, trial*100+step)
				if ty == nil {
					continue
				}
				if _, err := m.Apply(ty, updates); err != nil {
					t.Fatalf("step %d (%s) on view %s: %v", step, ty.Name, view.Label(), err)
				}
				for _, e := range append([]*dag.EqNode{d.Root}, marked...) {
					drift, err := m.Drift(e)
					if err != nil {
						t.Fatal(err)
					}
					if drift != "" {
						t.Fatalf("step %d (%s): node %s drifted (%s)\nview: %s\nset: %s",
							step, ty.Name, e, drift, view.Label(), vs.Key())
					}
				}
			}
		})
	}
}
