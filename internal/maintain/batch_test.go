package maintain_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/corpus"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/delta"
	"repro/internal/maintain"
	"repro/internal/rules"
	"repro/internal/storage"
	"repro/internal/tracks"
	"repro/internal/txn"
	"repro/internal/value"
)

// mirror is one of the two identically-seeded engine instances the
// equivalence property compares: its own database, maintainer and the
// nodes whose contents are checked.
type mirror struct {
	cfg     corpus.Config
	db      *corpus.Database
	m       *maintain.Maintainer
	checked []*dag.EqNode // root first, then the marked additional views
}

// buildMirror constructs a database, random view DAG and maintainer from
// a seed. Two calls with the same seed consume identical random streams
// and therefore build structurally identical instances.
func buildMirror(t *testing.T, seed int64) *mirror {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := corpus.Config{
		Departments:  3 + rng.Intn(5),
		EmpsPerDept:  2 + rng.Intn(3),
		ADeptsEveryN: 2,
	}
	db := corpus.NewDatabase(cfg)
	view := corpus.RandomView(rng, db)
	d, err := dag.FromTree(view)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Expand(rules.Default(), 300); err != nil {
		t.Fatal(err)
	}
	vs := tracks.RootSet(d)
	checked := []*dag.EqNode{d.Root}
	for _, e := range d.NonLeafEqs() {
		if !d.IsRoot(e) && rng.Intn(2) == 0 {
			vs[e.ID] = true
			checked = append(checked, e)
		}
	}
	m, err := maintain.New(d, db.Store, cost.PageIO{}, vs)
	if err != nil {
		t.Fatalf("view %s: %v", view.Label(), err)
	}
	return &mirror{cfg: cfg, db: db, m: m, checked: checked}
}

func rowsEqual(a, b []storage.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Count != b[i].Count || a[i].Tuple.Compare(b[i].Tuple) != 0 {
			return false
		}
	}
	return true
}

func sortedContents(m *maintain.Maintainer, e *dag.EqNode) []storage.Row {
	// Contents rows alias view storage and die at the view's next
	// mutation; these snapshots are compared across later windows, so
	// they must own their tuples.
	rows := m.Contents(e)
	out := make([]storage.Row, len(rows))
	for i, r := range rows {
		out[i] = storage.Row{Tuple: r.Tuple.Clone(), Count: r.Count}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Tuple.Compare(out[j].Tuple) < 0
	})
	return out
}

// TestApplyBatchEquivalence is the batching soundness property: for
// random views, random view sets and random transaction windows, the
// batched pipeline (all window sizes, all worker counts) leaves every
// materialized view byte-identical to per-transaction maintenance, and
// both agree with full recomputation.
func TestApplyBatchEquivalence(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 6
	}
	windowSizes := []int{1, 2, 3, 5, 8, 16, 64}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			seed := int64(7000 + trial)
			serial := buildMirror(t, seed) // per-transaction baseline
			batched := buildMirror(t, seed)
			batched.m.Workers = 1 + trial%8
			if len(serial.checked) != len(batched.checked) {
				t.Fatalf("mirrors diverged: %d vs %d checked nodes",
					len(serial.checked), len(batched.checked))
			}

			txnRng := rand.New(rand.NewSource(seed*31 + 7))
			steps := 0
			for w := 0; w < 4; w++ {
				size := windowSizes[txnRng.Intn(len(windowSizes))]
				var window []txn.Transaction
				for i := 0; i < size; i++ {
					ty, updates := corpus.RandomTxn(txnRng, serial.db, serial.cfg, trial*1000+steps)
					steps++
					if ty == nil {
						continue
					}
					if _, err := serial.m.Apply(ty, updates); err != nil {
						t.Fatalf("window %d: serial %s: %v", w, ty.Name, err)
					}
					window = append(window, txn.Transaction{Type: ty, Updates: updates})
				}
				rep, err := batched.m.ApplyBatch(window)
				if err != nil {
					t.Fatalf("window %d (%d txns): %v", w, len(window), err)
				}
				if rep.Size != len(window) {
					t.Fatalf("window %d: report size %d, want %d", w, rep.Size, len(window))
				}
				for i := range serial.checked {
					es, eb := serial.checked[i], batched.checked[i]
					if es.ID != eb.ID {
						t.Fatalf("mirrors diverged: node ids %d vs %d", es.ID, eb.ID)
					}
					want := sortedContents(serial.m, es)
					got := sortedContents(batched.m, eb)
					if !rowsEqual(got, want) {
						t.Fatalf("window %d (%d txns, %d workers): node %s diverged\nbatched: %v\nserial:  %v",
							w, len(window), batched.m.Workers, eb, got, want)
					}
					drift, err := batched.m.Drift(eb)
					if err != nil {
						t.Fatal(err)
					}
					if drift != "" {
						t.Fatalf("window %d: node %s drifted from oracle (%s)", w, eb, drift)
					}
				}
			}
		})
	}
}

// TestApplyBatchWorkerIOIndependence pins the accounting invariant: the
// worker count changes wall-clock behaviour only — the page I/Os charged
// for a window are identical whether views are applied sequentially or
// by a pool.
func TestApplyBatchWorkerIOIndependence(t *testing.T) {
	seed := int64(9090)
	gen := buildMirror(t, seed) // generates and serially applies the stream
	one := buildMirror(t, seed)
	many := buildMirror(t, seed)
	one.m.Workers = 1
	many.m.Workers = 8

	txnRng := rand.New(rand.NewSource(555))
	for w := 0; w < 6; w++ {
		var window []txn.Transaction
		for i := 0; i < 8; i++ {
			ty, updates := corpus.RandomTxn(txnRng, gen.db, gen.cfg, w*100+i)
			if ty == nil {
				continue
			}
			if _, err := gen.m.Apply(ty, updates); err != nil {
				t.Fatal(err)
			}
			window = append(window, txn.Transaction{Type: ty, Updates: updates})
		}
		if _, err := one.m.ApplyBatch(window); err != nil {
			t.Fatal(err)
		}
		if _, err := many.m.ApplyBatch(window); err != nil {
			t.Fatal(err)
		}
		if a, b := one.db.Store.IO.Snapshot(), many.db.Store.IO.Snapshot(); a != b {
			t.Fatalf("window %d: worker count changed I/O accounting:\n1 worker:  %s\n8 workers: %s",
				w, a.String(), b.String())
		}
	}
}

// TestApplyBatchAnnihilation pins the headline batching property: a
// window whose updates cancel out nets to an empty delta, so the
// pipeline spends zero page I/Os and leaves everything untouched.
func TestApplyBatchAnnihilation(t *testing.T) {
	mir := buildMirror(t, 4242)
	empDef := mir.db.Catalog.MustGet("Emp")
	hire := value.Tuple{
		value.NewString("ghost"),
		value.NewString(corpus.DeptName(0)),
		value.NewInt(123),
	}
	ins := delta.New(empDef.Schema)
	ins.Insert(hire, 1)
	del := delta.New(empDef.Schema)
	del.Delete(hire, 1)
	tyIns := &txn.Type{Name: "+Emp", Weight: 1, Updates: []txn.RelUpdate{{Rel: "Emp", Kind: txn.Insert, Size: 1}}}
	tyDel := &txn.Type{Name: "-Emp", Weight: 1, Updates: []txn.RelUpdate{{Rel: "Emp", Kind: txn.Delete, Size: 1}}}

	before := sortedContents(mir.m, mir.checked[0])
	io0 := mir.db.Store.IO.Snapshot()
	rep, err := mir.m.ApplyBatch([]txn.Transaction{
		{Type: tyIns, Updates: map[string]*delta.Delta{"Emp": ins}},
		{Type: tyDel, Updates: map[string]*delta.Delta{"Emp": del}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Merged) != 0 {
		t.Fatalf("annihilating window left a net delta: %v", rep.Merged)
	}
	if got := mir.db.Store.IO.Snapshot().Sub(io0); got.Total() != 0 {
		t.Fatalf("annihilating window charged I/O: %s", got)
	}
	if after := sortedContents(mir.m, mir.checked[0]); !rowsEqual(before, after) {
		t.Fatalf("annihilating window changed the root view")
	}
	if drift, _ := mir.m.Drift(mir.checked[0]); drift != "" {
		t.Fatalf("root drifted: %s", drift)
	}
}
