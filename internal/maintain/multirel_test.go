package maintain_test

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/delta"
	"repro/internal/txn"
)

// TestMultiRelationTransaction drives a single transaction that updates
// Emp AND Dept simultaneously (the ΔL⋈R ∪ L⋈ΔR ∪ ΔL⋈ΔR decomposition
// through the engine) and checks consistency.
func TestMultiRelationTransaction(t *testing.T) {
	s := newScenario(t, corpus.Config{Departments: 6, EmpsPerDept: 3})
	m := s.maintainer(t, s.n3)
	both := &txn.Type{
		Name: ">Both", Weight: 1,
		Updates: []txn.RelUpdate{
			{Rel: "Emp", Kind: txn.Modify, Size: 1, Cols: []string{"Salary"}},
			{Rel: "Dept", Kind: txn.Modify, Size: 1, Cols: []string{"Budget"}},
		},
	}
	de, err := s.db.EmpSalaryDelta(2, 1, 450)
	if err != nil {
		t.Fatal(err)
	}
	dd, err := s.db.DeptBudgetDelta(2, 300) // same department: deltas interact
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(both, map[string]*delta.Delta{"Emp": de, "Dept": dd}); err != nil {
		t.Fatal(err)
	}
	s.checkDrift(t, m, s.n3)
	// The budget cut below the raised payroll makes d2 a problem dept.
	rows := m.Contents(s.d.Root)
	if len(rows) != 1 || rows[0].Tuple[0].S != corpus.DeptName(2) {
		t.Fatalf("ProblemDept = %v, want exactly d0002", rows)
	}

	// A second combined transaction on different departments.
	de, err = s.db.EmpSalaryDelta(4, 0, 120)
	if err != nil {
		t.Fatal(err)
	}
	dd, err = s.db.DeptBudgetDelta(5, 9999)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(both, map[string]*delta.Delta{"Emp": de, "Dept": dd}); err != nil {
		t.Fatal(err)
	}
	s.checkDrift(t, m, s.n3)
}

// TestMultiRelationWithN4 exercises JoinBoth where the join view itself
// is materialized (deltas must combine into one batch for N4).
func TestMultiRelationWithN4(t *testing.T) {
	s := newScenario(t, corpus.Config{Departments: 4, EmpsPerDept: 2})
	m := s.maintainer(t, s.n4)
	both := &txn.Type{
		Name: ">Both", Weight: 1,
		Updates: []txn.RelUpdate{
			{Rel: "Emp", Kind: txn.Modify, Size: 1, Cols: []string{"Salary"}},
			{Rel: "Dept", Kind: txn.Modify, Size: 1, Cols: []string{"Budget"}},
		},
	}
	de, err := s.db.EmpSalaryDelta(1, 0, 777)
	if err != nil {
		t.Fatal(err)
	}
	dd, err := s.db.DeptBudgetDelta(1, 123)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(both, map[string]*delta.Delta{"Emp": de, "Dept": dd}); err != nil {
		t.Fatal(err)
	}
	s.checkDrift(t, m, s.n4)
}
