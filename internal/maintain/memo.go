package maintain

import (
	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/value"
)

// Window-level multi-query optimization counters. memo_hits counts
// queries served from the shared subplan memo instead of storage — the
// runtime realization of the sharing the cost model's MQO step assumes
// when it prices each distinct (target, binding) query once per track.
var (
	obsMemoHits   = obs.C("maintain.mqo.memo_hits")
	obsMemoMisses = obs.C("maintain.mqo.memo_misses")
)

// windowMemo is the shared subplan memo for one maintenance window (one
// transaction in Apply, one coalesced batch in ApplyBatch). It has two
// layers:
//
//   - rows: answered point queries σ[cols = key](target), keyed by the
//     target's structural fingerprint (dag.Fingerprint) plus the binding.
//     Fingerprint keying makes the slot a property of the expression, not
//     of the equivalence-class ID, so every query posed along the track —
//     across marked nodes and across opDelta calls — that asks for the
//     same subexpression under the same binding is evaluated exactly
//     once per window.
//   - eval: the executor-level memo sharing full-evaluation results of
//     repeated subtrees inside query-tree evaluation (exec.Memo).
//
// Both layers hold pre-update state only; a memo never survives past the
// window's propagation pass (views and bases mutate after it).
type windowMemo struct {
	rows map[string][]storage.Row
	eval exec.Memo
	// buf is the window's probe-row slab: answerQuery directs
	// LookupAppend into it and memoizes sub-slices, so a window's probes
	// share one grow-once buffer instead of allocating a fresh []Row
	// each. Truncated (not freed) at window start — cross-window
	// recycling per DESIGN.md §14.
	buf []storage.Row
}

// newWindowMemo returns the memo for one window. The memo struct and
// its maps are owned by the maintainer and recycled across windows
// (cleared, not reallocated); single-threaded use per the propagation
// pass. With DisableMQO set (test knob) the memo is inert: every query
// goes back to storage, which is the per-query oracle the equivalence
// suite compares against.
func (m *Maintainer) newWindowMemo() *windowMemo {
	w := &m.winMemo
	w.buf = w.buf[:0]
	if m.DisableMQO {
		w.rows, w.eval = nil, nil
		return w
	}
	if w.rows == nil {
		w.rows = map[string][]storage.Row{}
		w.eval = exec.Memo{}
	} else {
		clear(w.rows)
		clear(w.eval)
	}
	return w
}

// get looks up an answered query; a nil rows map (DisableMQO) never hits.
func (w *windowMemo) get(key []byte) ([]storage.Row, bool) {
	if w.rows == nil {
		obsMemoMisses.Inc()
		return nil, false
	}
	rows, ok := w.rows[string(key)]
	if ok {
		obsMemoHits.Inc()
	} else {
		obsMemoMisses.Inc()
	}
	return rows, ok
}

// put records an answered query (no-op when the memo is inert).
func (w *windowMemo) put(key string, rows []storage.Row) {
	if w.rows != nil {
		w.rows[key] = rows
	}
}

// lookup probes rel through the window's shared row slab: matches are
// appended to buf and the answer is the capacity-clipped sub-slice, so
// a later probe growing buf can never scribble over an earlier answer.
func (w *windowMemo) lookup(rel *storage.Relation, cols []string, key value.Tuple) []storage.Row {
	start := len(w.buf)
	w.buf = rel.LookupAppend(cols, key, w.buf)
	return w.buf[start:len(w.buf):len(w.buf)]
}

// memoKey builds the memo key for σ[cols = key](target): structural
// fingerprint, binding columns, bound values (canonical key encoding).
func (m *Maintainer) memoKey(dst []byte, target *dag.EqNode, cols []string, key value.Tuple) []byte {
	dst = append(dst, m.D.Fingerprint(target)...)
	dst = append(dst, '|')
	for _, c := range cols {
		dst = append(dst, c...)
		dst = append(dst, ',')
	}
	dst = append(dst, '|')
	return value.AppendKey(dst, key)
}
