package maintain

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/delta"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/tracks"
	"repro/internal/txn"
)

// obsBatchWindow records the transaction count of each coalesced window
// — the batching knob §3.6's space-for-time trade is parameterized by.
var obsBatchWindow = obs.H("maintain.batch.window")

// workerHist returns the apply-latency histogram for one view-apply
// worker slot (nanoseconds per view applied). Registration is lazy and
// idempotent, so repeated batches share one histogram per slot; a
// skewed slot reveals an unbalanced view partition.
func workerHist(w int) *obs.Histogram {
	return obs.H(fmt.Sprintf("maintain.apply.worker%02d.ns", w))
}

// BatchReport describes one maintained window of transactions, with the
// same I/O split as Report. QueryIO covers the single propagation pass
// over the coalesced delta — this is where batching wins: track-prefix
// queries are posed once for the whole window instead of once per
// transaction, and changes that annihilate within the window are never
// propagated at all.
//
// Lifetime: ApplyBatch returns a recycled report — the same object,
// reset in place, every window — so the report and everything it points
// at are valid only until the next Apply/ApplyBatch on the maintainer.
type BatchReport struct {
	// Size is the number of transactions in the window.
	Size  int
	Type  *txn.Type
	Track *tracks.Track

	QueryIO storage.IOCounter
	ViewIO  storage.IOCounter
	RootIO  storage.IOCounter
	BaseIO  storage.IOCounter

	// Deltas holds the computed change at every affected node.
	Deltas map[int]*delta.Delta
	// Merged holds the coalesced per-base-relation deltas the window
	// nets out to (what was actually propagated and applied), sorted by
	// relation name.
	Merged delta.Coalesced
	// LSN is the log sequence number as of which the window is durable
	// when a Committer is attached (0 otherwise).
	LSN uint64
}

// PaperTotal is the quantity §3.6 reports: query I/O plus
// additional-view maintenance I/O.
func (r *BatchReport) PaperTotal() int64 { return r.QueryIO.Total() + r.ViewIO.Total() }

// ApplyBatch maintains the view set under a window of transactions as
// one unit:
//
//  1. the window's per-relation deltas are coalesced into a single net
//     delta per base relation (annihilating +1/−1 pairs up front);
//  2. the merged delta is propagated once along the update track chosen
//     for the window's synthesized transaction type, sharing the
//     per-window probe cache across everything the window touches;
//  3. the per-view deltas are applied to independent materialized views
//     concurrently (up to m.Workers goroutines), each worker charging a
//     private I/O counter so the hot path takes no locks; sidecar
//     live/stale bookkeeping stays per-view and runs on whichever
//     worker owns the view;
//  4. the base relations are updated, one storage batch per relation.
//
// Queries still see the pre-batch state, exactly as Apply's queries see
// the pre-transaction state: composition of the window's deltas is
// valid against the database as of the window's start. The final view
// contents are identical to applying the window transaction by
// transaction; only the I/O spent getting there differs.
func (m *Maintainer) ApplyBatch(txns []txn.Transaction) (*BatchReport, error) {
	t0 := time.Now()
	wt := obs.StartWindow("maintain.batch", m.spanParent)
	m.windowSpan = wt.RootID()
	obs.Flight().Record(obs.EvWindowOpen, 0, wt.Seq(), uint64(len(txns)), wt.RootID())
	defer func() {
		wt.Finish()
		elapsed := time.Since(t0).Nanoseconds()
		obsApplyNs.Observe(elapsed)
		m.observeTxnTypes(txns, elapsed)
		m.publishArenaStats()
	}()
	obsBatchWindow.Observe(int64(len(txns)))
	// Rewind the window arena: tuples from the previous window (held by
	// its report) are invalidated here, per the window ownership rule.
	m.arena.Reset()
	m.winBuf = m.winBuf[:0]
	for _, t := range txns {
		m.winBuf = append(m.winBuf, t.Updates)
	}
	merged := m.coalescer.Coalesce(m.winBuf)
	bt := txn.MergedType(txns, merged)
	// Recycled report: the maintainer hands back the same BatchReport
	// every window, reset in place — callers may use it only until the
	// next Apply/ApplyBatch (the same lifetime its Deltas already had).
	rep := &m.batchRep
	*rep = BatchReport{
		Size:   len(txns),
		Type:   bt,
		Deltas: rep.Deltas,
		Merged: merged,
	}
	if rep.Deltas == nil {
		rep.Deltas = map[int]*delta.Delta{}
	} else {
		clear(rep.Deltas)
	}
	if len(merged) == 0 {
		rep.Track = &tracks.Track{}
		// Still drain the committer: transactions that net to nothing
		// (e.g. an applied-then-rolled-back rejection) must clear their
		// staged deltas, and the returned LSN is the durability point
		// covering the window.
		if m.Committer != nil {
			lsn, err := m.Committer.Commit(len(txns))
			if err != nil {
				obs.Flight().Record(obs.EvWindowFence, 0, wt.Seq(), lsn, 1)
				return nil, fmt.Errorf("maintain: commit: %w", err)
			}
			rep.LSN = lsn
			obs.Flight().Record(obs.EvWindowFence, 0, wt.Seq(), lsn, 0)
		}
		m.fireWindowHook(rep.LSN, rep.Size, rep.Deltas)
		return rep, nil
	}
	// Pipelined group commit: a WindowCommitter gets the window's net
	// base deltas now — before propagation — so its encode/write/fsync
	// runs under the entire window instead of only under view
	// application. The wait call below is the commit fence; on every
	// exit path it must run so the committer's staging is re-armed.
	var wait func() (uint64, error)
	if wc, ok := m.Committer.(WindowCommitter); ok {
		wait = wc.BeginWindow(merged, len(txns))
		// Yield so the committer goroutine runs now, reaching its fsync
		// before propagation starts: on GOMAXPROCS=1 a CPU-bound window
		// never otherwise cedes the processor, and the "background"
		// commit would execute entirely inside the fence wait. Once the
		// committer blocks in fsync the scheduler hands back the CPU,
		// and the disk flush proceeds under the window's compute.
		runtime.Gosched()
		waited := false
		origWait := wait
		wait = func() (uint64, error) {
			waited = true
			return origWait()
		}
		defer func() {
			if !waited {
				origWait()
			}
		}()
	}

	plan, err := m.planFor(bt)
	if err != nil {
		return nil, err
	}
	tr := plan.track
	rep.Track = tr

	// Seed leaf deltas from the merged window. Coalesce emits only
	// non-empty net deltas, so a Get hit is always worth seeding.
	for _, e := range m.D.Eqs() {
		if e.IsLeaf() {
			if du := merged.Get(e.BaseRel); du != nil {
				rep.Deltas[e.ID] = du
			}
		}
	}

	// One propagation pass for the whole window, charging queries; the
	// window memo shares answered queries across every transaction the
	// window coalesced.
	prop := wt.Child("maintain.propagate")
	w := m.newWindowMemo()
	io0 := m.Store.IO.Snapshot()
	for _, e := range tr.Order {
		op := tr.Choice[e.ID]
		d, err := m.opDelta(e, op, rep.Deltas, tr, w, plan.steps[e.ID])
		if err != nil {
			prop.Finish()
			return nil, fmt.Errorf("maintain: %s at %s: %w", bt.Name, e, err)
		}
		rep.Deltas[e.ID] = d
		obsDeltaChanges.Observe(int64(len(d.Changes)))
	}
	rep.QueryIO = m.Store.IO.Snapshot().Sub(io0)
	prop.Finish()

	// Apply the base relation updates, one batch per relation, BEFORE
	// the views: the mutation hook stages base deltas for the group
	// commit, and applying them first lets the commit fsync run
	// concurrently with view application below. Queries are all done
	// (propagation finished), so no reader observes the new base state
	// early. Coalesce sorts by relation name, so the order is
	// deterministic.
	ab := wt.Child("maintain.apply_base")
	before := m.Store.IO.Snapshot()
	for _, rd := range merged {
		r, ok := m.Store.Get(rd.Rel)
		if !ok {
			ab.Finish()
			return nil, fmt.Errorf("maintain: unknown relation %q", rd.Rel)
		}
		m.mutBuf = rd.Delta.AppendMutations(m.mutBuf[:0])
		r.ApplyBatch(m.mutBuf)
	}
	rep.BaseIO = m.Store.IO.Snapshot().Sub(before)
	ab.Finish()

	// Legacy group commit (a Committer without BeginWindow): one record,
	// one fsync for the whole window, overlapped with view application
	// only (the log reads the base deltas staged by the hook, which are
	// fully staged by now). A WindowCommitter has been running since
	// before propagation instead.
	type commitResult struct {
		lsn uint64
		err error
	}
	var commit chan commitResult
	if m.Committer != nil && wait == nil {
		commit = make(chan commitResult, 1)
		n := len(txns)
		go func() {
			lsn, err := m.Committer.Commit(n)
			commit <- commitResult{lsn: lsn, err: err}
		}()
	}

	// Apply deltas to the materialized views. Sidecar updates ride with
	// the owning view's worker: they only read the (now fully computed)
	// delta map and write that view's private live/stale/pending state.
	av := wt.Child("maintain.apply_views")
	verr := m.applyViews(rep, tr, av.ID())
	av.Finish()
	if wait != nil {
		// Commit fence: ack implies durable.
		lsn, err := wait()
		if err != nil {
			obs.Flight().Record(obs.EvWindowFence, 0, wt.Seq(), lsn, 1)
			return nil, fmt.Errorf("maintain: commit: %w", err)
		}
		rep.LSN = lsn
		obs.Flight().Record(obs.EvWindowFence, 0, wt.Seq(), lsn, 0)
	}
	if commit != nil {
		cr := <-commit
		if cr.err != nil {
			obs.Flight().Record(obs.EvWindowFence, 0, wt.Seq(), cr.lsn, 1)
			return nil, fmt.Errorf("maintain: commit: %w", cr.err)
		}
		rep.LSN = cr.lsn
		obs.Flight().Record(obs.EvWindowFence, 0, wt.Seq(), cr.lsn, 0)
	}
	if verr != nil {
		return nil, verr
	}
	m.fireWindowHook(rep.LSN, rep.Size, rep.Deltas)
	return rep, nil
}

// viewWork is one view-apply job; the maintainer keeps a recycled
// slice of these across windows (workBuf).
type viewWork struct {
	v    *View
	root bool
}

// applyViews applies the computed deltas to every materialized view on
// the track, in parallel when configured and safe. parent is the
// enclosing apply_views span: each worker goroutine publishes one
// maintain.apply.worker span under it, so cross-goroutine view
// application stays inside the window trace.
func (m *Maintainer) applyViews(rep *BatchReport, tr *tracks.Track, parent uint64) error {
	work := m.workBuf[:0]
	for _, e := range tr.Order {
		if v, ok := m.views[e.ID]; ok {
			work = append(work, viewWork{v: v, root: m.D.IsRoot(e)})
		}
	}
	m.workBuf = work
	if len(work) == 0 {
		return nil
	}
	workers := m.Workers
	if workers > len(work) {
		workers = len(work)
	}
	if m.Store.Buffer != nil {
		workers = 1
	}
	if workers > 1 {
		// Auto-degrade to serial when the window's view deltas are too
		// small to amortize worker handoff: channel send/receive plus
		// counter folding costs more than the few mutations themselves
		// (measured: small-batch windows ran faster single-threaded).
		total := 0
		for _, w := range work {
			total += rep.Deltas[w.v.Eq.ID].Size()
		}
		thr := m.SerialThreshold
		if thr == 0 {
			thr = defaultSerialThreshold
		}
		if total < thr {
			workers = 1
			obsSerialDegrade.Inc()
		}
	}

	if workers <= 1 {
		hist := workerHist(0)
		for _, w := range work {
			t0 := time.Now()
			if d := rep.Deltas[w.v.Eq.ID]; !d.Empty() {
				before := m.Store.IO.Snapshot()
				m.mutBuf = d.AppendMutations(m.mutBuf[:0])
				w.v.Rel.ApplyBatch(m.mutBuf)
				used := m.Store.IO.Snapshot().Sub(before)
				if w.root {
					rep.RootIO = addIO(rep.RootIO, used)
				} else {
					rep.ViewIO = addIO(rep.ViewIO, used)
				}
			}
			if err := m.updateSidecar(w.v, rep.Deltas, tr); err != nil {
				return err
			}
			hist.Observe(time.Since(t0).Nanoseconds())
		}
		return nil
	}

	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	jobs := make(chan viewWork)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wsp := obs.Trace.Start("maintain.apply.worker", parent)
			defer wsp.Finish()
			hist := workerHist(w)
			// wio is this worker's private counter: the charge paths
			// mutate it atomically, and nobody else holds a pointer to
			// it, so the plain copy/Sub below are race-free (see the
			// IOCounter concurrency contract in internal/storage).
			var wio, rootSum, viewSum storage.IOCounter
			var werr error
			var mbuf []storage.Mutation // worker-private mutation scratch
			for j := range jobs {
				if werr != nil {
					continue // drain after a failure
				}
				t0 := time.Now()
				if d := rep.Deltas[j.v.Eq.ID]; !d.Empty() {
					before := wio
					j.v.Rel.SetIOCounter(&wio)
					mbuf = d.AppendMutations(mbuf[:0])
					j.v.Rel.ApplyBatch(mbuf)
					j.v.Rel.SetIOCounter(nil)
					used := wio.Sub(before)
					if j.root {
						rootSum = addIO(rootSum, used)
					} else {
						viewSum = addIO(viewSum, used)
					}
				}
				if err := m.updateSidecar(j.v, rep.Deltas, tr); err != nil {
					werr = err
				}
				hist.Observe(time.Since(t0).Nanoseconds())
			}
			mu.Lock()
			rep.RootIO = addIO(rep.RootIO, rootSum)
			rep.ViewIO = addIO(rep.ViewIO, viewSum)
			if werr != nil && firstErr == nil {
				firstErr = werr
			}
			mu.Unlock()
		}(i)
	}
	for _, w := range work {
		jobs <- w
	}
	close(jobs)
	wg.Wait()
	// Fold the workers' private charges back into the store's shared
	// counter so global accounting matches the sequential path exactly.
	// AddCounter mutates atomically: the store counter may be read (or
	// Reset) concurrently by monitoring goroutines — e.g. a /metrics
	// scrape — and the ownership rule is that only quiescent or
	// goroutine-private counters may be accessed non-atomically.
	m.Store.IO.AddCounter(addIO(rep.RootIO, rep.ViewIO))
	return firstErr
}
