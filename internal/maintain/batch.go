package maintain

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/delta"
	"repro/internal/storage"
	"repro/internal/tracks"
	"repro/internal/txn"
)

// BatchReport describes one maintained window of transactions, with the
// same I/O split as Report. QueryIO covers the single propagation pass
// over the coalesced delta — this is where batching wins: track-prefix
// queries are posed once for the whole window instead of once per
// transaction, and changes that annihilate within the window are never
// propagated at all.
type BatchReport struct {
	// Size is the number of transactions in the window.
	Size  int
	Type  *txn.Type
	Track *tracks.Track

	QueryIO storage.IOCounter
	ViewIO  storage.IOCounter
	RootIO  storage.IOCounter
	BaseIO  storage.IOCounter

	// Deltas holds the computed change at every affected node.
	Deltas map[int]*delta.Delta
	// Merged holds the coalesced per-base-relation deltas the window
	// nets out to (what was actually propagated and applied).
	Merged map[string]*delta.Delta
}

// PaperTotal is the quantity §3.6 reports: query I/O plus
// additional-view maintenance I/O.
func (r *BatchReport) PaperTotal() int64 { return r.QueryIO.Total() + r.ViewIO.Total() }

// ApplyBatch maintains the view set under a window of transactions as
// one unit:
//
//  1. the window's per-relation deltas are coalesced into a single net
//     delta per base relation (annihilating +1/−1 pairs up front);
//  2. the merged delta is propagated once along the update track chosen
//     for the window's synthesized transaction type, sharing the
//     per-window probe cache across everything the window touches;
//  3. the per-view deltas are applied to independent materialized views
//     concurrently (up to m.Workers goroutines), each worker charging a
//     private I/O counter so the hot path takes no locks; sidecar
//     live/stale bookkeeping stays per-view and runs on whichever
//     worker owns the view;
//  4. the base relations are updated, one storage batch per relation.
//
// Queries still see the pre-batch state, exactly as Apply's queries see
// the pre-transaction state: composition of the window's deltas is
// valid against the database as of the window's start. The final view
// contents are identical to applying the window transaction by
// transaction; only the I/O spent getting there differs.
func (m *Maintainer) ApplyBatch(txns []txn.Transaction) (*BatchReport, error) {
	windows := make([]map[string]*delta.Delta, len(txns))
	for i, t := range txns {
		windows[i] = t.Updates
	}
	merged := delta.Coalesce(windows)
	bt := txn.MergedType(txns, merged)
	rep := &BatchReport{
		Size:   len(txns),
		Type:   bt,
		Deltas: map[int]*delta.Delta{},
		Merged: merged,
	}
	if len(merged) == 0 {
		rep.Track = &tracks.Track{}
		return rep, nil
	}
	tr := m.plans[bt.Name]
	if tr == nil {
		best, _ := m.Cost.CostViewSet(m.VS, bt)
		tr = best.Track
		if tr == nil {
			tr = &tracks.Track{}
		}
		m.plans[bt.Name] = tr
	}
	rep.Track = tr

	// Seed leaf deltas from the merged window.
	for _, e := range m.D.Eqs() {
		if e.IsLeaf() {
			if du, ok := merged[e.BaseRel]; ok && !du.Empty() {
				rep.Deltas[e.ID] = du
			}
		}
	}

	// One propagation pass for the whole window, charging queries.
	probeCache := map[string][]storage.Row{}
	io0 := *m.Store.IO
	for _, e := range tr.Order {
		op := tr.Choice[e.ID]
		d, err := m.opDelta(e, op, rep.Deltas, tr, probeCache)
		if err != nil {
			return nil, fmt.Errorf("maintain: %s at %s: %w", bt.Name, e, err)
		}
		rep.Deltas[e.ID] = d
	}
	rep.QueryIO = m.Store.IO.Sub(io0)

	// Apply deltas to the materialized views. Sidecar updates ride with
	// the owning view's worker: they only read the (now fully computed)
	// delta map and write that view's private live/stale/pending state.
	if err := m.applyViews(rep, tr); err != nil {
		return nil, err
	}

	// Finally apply the base relation updates, one batch per relation,
	// in deterministic order.
	rels := make([]string, 0, len(merged))
	for rel := range merged {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	before := *m.Store.IO
	for _, rel := range rels {
		r, ok := m.Store.Get(rel)
		if !ok {
			return nil, fmt.Errorf("maintain: unknown relation %q", rel)
		}
		r.ApplyBatch(merged[rel].ToMutations())
	}
	rep.BaseIO = m.Store.IO.Sub(before)
	return rep, nil
}

// applyViews applies the computed deltas to every materialized view on
// the track, in parallel when configured and safe.
func (m *Maintainer) applyViews(rep *BatchReport, tr *tracks.Track) error {
	type viewWork struct {
		v    *View
		root bool
	}
	var work []viewWork
	for _, e := range tr.Order {
		if v, ok := m.views[e.ID]; ok {
			work = append(work, viewWork{v: v, root: m.D.IsRoot(e)})
		}
	}
	if len(work) == 0 {
		return nil
	}
	workers := m.Workers
	if workers > len(work) {
		workers = len(work)
	}
	if m.Store.Buffer != nil {
		workers = 1
	}

	if workers <= 1 {
		for _, w := range work {
			if d := rep.Deltas[w.v.Eq.ID]; !d.Empty() {
				before := *m.Store.IO
				w.v.Rel.ApplyBatch(d.ToMutations())
				used := m.Store.IO.Sub(before)
				if w.root {
					rep.RootIO = addIO(rep.RootIO, used)
				} else {
					rep.ViewIO = addIO(rep.ViewIO, used)
				}
			}
			if err := m.updateSidecar(w.v, rep.Deltas, tr); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	jobs := make(chan viewWork)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var wio, rootSum, viewSum storage.IOCounter
			var werr error
			for w := range jobs {
				if werr != nil {
					continue // drain after a failure
				}
				if d := rep.Deltas[w.v.Eq.ID]; !d.Empty() {
					before := wio
					w.v.Rel.SetIOCounter(&wio)
					w.v.Rel.ApplyBatch(d.ToMutations())
					w.v.Rel.SetIOCounter(nil)
					used := wio.Sub(before)
					if w.root {
						rootSum = addIO(rootSum, used)
					} else {
						viewSum = addIO(viewSum, used)
					}
				}
				if err := m.updateSidecar(w.v, rep.Deltas, tr); err != nil {
					werr = err
				}
			}
			mu.Lock()
			rep.RootIO = addIO(rep.RootIO, rootSum)
			rep.ViewIO = addIO(rep.ViewIO, viewSum)
			if werr != nil && firstErr == nil {
				firstErr = werr
			}
			mu.Unlock()
		}()
	}
	for _, w := range work {
		jobs <- w
	}
	close(jobs)
	wg.Wait()
	// Fold the workers' private charges back into the store's shared
	// counter so global accounting matches the sequential path exactly.
	*m.Store.IO = addIO(*m.Store.IO, addIO(rep.RootIO, rep.ViewIO))
	return firstErr
}
