package maintain_test

import (
	"fmt"
	"math/rand"
	"os"
	"regexp"
	"strconv"
	"sync"
	"testing"

	"repro/internal/algebra"
	"repro/internal/corpus"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/delta"
	"repro/internal/expr"
	"repro/internal/maintain"
	"repro/internal/rules"
	"repro/internal/storage"
	"repro/internal/tracks"
	"repro/internal/txn"
	"repro/internal/value"
)

// shardCounts returns the shard counts under test, restricted to one
// count when the SHARD_MATRIX environment variable is set (the CI
// shard-matrix job runs one count per matrix leg).
func shardCounts(t testing.TB) []int {
	if v := os.Getenv("SHARD_MATRIX"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad SHARD_MATRIX=%q", v)
		}
		return []int{n}
	}
	return []int{1, 2, 4, 8}
}

// mirrorFactory returns a shard factory that rebuilds the exact
// database + expanded DAG of buildMirror(seed): the rng stream is
// re-consumed identically per call, so every shard's DAG carries the
// same equivalence-node IDs (NewSharded verifies this).
func mirrorFactory(seed int64) func() (*maintain.ShardSetup, error) {
	return func() (*maintain.ShardSetup, error) {
		rng := rand.New(rand.NewSource(seed))
		cfg := corpus.Config{
			Departments:  3 + rng.Intn(5),
			EmpsPerDept:  2 + rng.Intn(3),
			ADeptsEveryN: 2,
		}
		db := corpus.NewDatabase(cfg)
		view := corpus.RandomView(rng, db)
		d, err := dag.FromTree(view)
		if err != nil {
			return nil, err
		}
		if _, err := d.Expand(rules.Default(), 300); err != nil {
			return nil, err
		}
		return &maintain.ShardSetup{D: d, Cat: db.Catalog, Store: db.Store}, nil
	}
}

// buildSharded is the sharded twin of buildMirror: same seed, same
// view set, same checked nodes, but maintained by a Sharded pipeline
// at the given shard and worker counts.
func buildSharded(t *testing.T, seed int64, shards, workers int) *maintain.Sharded {
	t.Helper()
	// Re-derive the view set with buildMirror's exact rng consumption,
	// so serial.checked[i].ID indexes the same logical node here.
	rng := rand.New(rand.NewSource(seed))
	cfg := corpus.Config{
		Departments:  3 + rng.Intn(5),
		EmpsPerDept:  2 + rng.Intn(3),
		ADeptsEveryN: 2,
	}
	db := corpus.NewDatabase(cfg)
	view := corpus.RandomView(rng, db)
	d, err := dag.FromTree(view)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Expand(rules.Default(), 300); err != nil {
		t.Fatal(err)
	}
	vs := tracks.RootSet(d)
	for _, e := range d.NonLeafEqs() {
		if !d.IsRoot(e) && rng.Intn(2) == 0 {
			vs[e.ID] = true
		}
	}
	s, err := maintain.NewSharded(mirrorFactory(seed), maintain.ShardedConfig{
		Shards:  shards,
		VS:      vs,
		Workers: workers,
	})
	if err != nil {
		t.Fatalf("seed %d shards %d: %v", seed, shards, err)
	}
	return s
}

// TestShardInvariance is the headline correctness obligation of the
// sharded pipeline: for random views, random view sets and random
// transaction windows, the maintained contents of every materialized
// node — and the integrity-constraint verdict read off the root — are
// byte-identical at every shard count to per-transaction unsharded
// maintenance, and agree with the recompute oracle over the union of
// the shard bases.
func TestShardInvariance(t *testing.T) {
	trials := 8
	if testing.Short() {
		trials = 3
	}
	counts := shardCounts(t)
	windowSizes := []int{1, 2, 5, 16, 64}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			seed := int64(7300 + trial)
			serial := buildMirror(t, seed)
			type variant struct {
				shards int
				s      *maintain.Sharded
			}
			var variants []variant
			for vi, n := range counts {
				workers := 1 + (trial+vi*3)%8
				variants = append(variants, variant{n, buildSharded(t, seed, n, workers)})
			}
			for _, v := range variants {
				if v.shards > 1 && v.s.Part.Effective == 1 && v.s.Part.Reason == "" {
					t.Fatalf("shards=%d fell back without a reason", v.shards)
				}
				t.Logf("shards=%d: %s (built %d)", v.shards, v.s.Part.Describe(), v.s.NumShards())
			}

			txnRng := rand.New(rand.NewSource(seed*17 + 3))
			steps := 0
			for w := 0; w < 4; w++ {
				size := windowSizes[txnRng.Intn(len(windowSizes))]
				var window []txn.Transaction
				for i := 0; i < size; i++ {
					ty, updates := corpus.RandomTxn(txnRng, serial.db, serial.cfg, trial*1000+steps)
					steps++
					if ty == nil {
						continue
					}
					if _, err := serial.m.Apply(ty, updates); err != nil {
						t.Fatalf("window %d: serial %s: %v", w, ty.Name, err)
					}
					window = append(window, txn.Transaction{Type: ty, Updates: updates})
				}
				serialViolations := sumCounts(serial.m.Contents(serial.checked[0]))
				for _, v := range variants {
					rep, err := v.s.ApplyBatch(window)
					if err != nil {
						t.Fatalf("window %d shards %d: %v", w, v.shards, err)
					}
					if rep.Size != len(window) {
						t.Fatalf("window %d shards %d: report size %d, want %d", w, v.shards, rep.Size, len(window))
					}
					for i, e := range serial.checked {
						want := sortedContents(serial.m, e)
						got := v.s.Contents(e)
						if !rowsEqual(got, want) {
							t.Fatalf("window %d shards %d (%s): node %d (%s) diverged\nsharded: %v\nserial:  %v",
								w, v.shards, v.s.Part.Describe(), i, e, got, want)
						}
					}
					if got := v.s.Violations(serial.checked[0]); got != serialViolations {
						t.Fatalf("window %d shards %d: IC verdict diverged: %d violations, serial %d",
							w, v.shards, got, serialViolations)
					}
					if w%2 == 1 {
						for _, e := range serial.checked {
							drift, err := v.s.Drift(e)
							if err != nil {
								t.Fatal(err)
							}
							if drift != "" {
								t.Fatalf("window %d shards %d: node %s drifted from oracle (%s)",
									w, v.shards, e, drift)
							}
						}
					}
				}
			}
		})
	}
}

func sumCounts(rows []storage.Row) int64 {
	var n int64
	for _, r := range rows {
		n += r.Count
	}
	return n
}

// aggFactory builds a fixed corporate database whose views are chosen
// by build; used by the cross-shard merge tests.
func aggFactory(build func(db *corpus.Database) []algebra.Node) func() (*maintain.ShardSetup, error) {
	return func() (*maintain.ShardSetup, error) {
		cfg := corpus.Config{Departments: 6, EmpsPerDept: 4, ADeptsEveryN: 2}
		db := corpus.NewDatabase(cfg)
		d, err := dag.FromTrees(build(db)...)
		if err != nil {
			return nil, err
		}
		if _, err := d.Expand(rules.Default(), 200); err != nil {
			return nil, err
		}
		return &maintain.ShardSetup{D: d, Cat: db.Catalog, Store: db.Store}, nil
	}
}

// randomAggViews generates SUM/COUNT aggregates over Emp grouped by
// DName — spanning views under an EName partitioning, since the group
// key is spread across shards while every Emp row carries EName.
func randomAggViews(rng *rand.Rand, db *corpus.Database) []algebra.Node {
	emp := func() algebra.Node { return algebra.Scan(db.Catalog.MustGet("Emp")) }
	pool := []func() algebra.Node{
		func() algebra.Node { return db.SumOfSals() },
		func() algebra.Node {
			return algebra.NewAggregate([]string{"Emp.DName"},
				[]algebra.AggSpec{{Func: algebra.Count, As: "N"}}, emp())
		},
		func() algebra.Node {
			return algebra.NewAggregate([]string{"Emp.DName"},
				[]algebra.AggSpec{
					{Func: algebra.Sum, Arg: expr.C("Emp.Salary"), As: "S"},
					{Func: algebra.Count, As: "N"},
				}, emp())
		},
		func() algebra.Node {
			return algebra.NewAggregate([]string{"Emp.DName"},
				[]algebra.AggSpec{
					{Func: algebra.Min, Arg: expr.C("Emp.Salary"), As: "Lo"},
					{Func: algebra.Max, Arg: expr.C("Emp.Salary"), As: "Hi"},
				}, emp())
		},
	}
	out := []algebra.Node{pool[0]()}
	for i := 1; i < len(pool); i++ {
		if rng.Intn(2) == 0 {
			out = append(out, pool[i]())
		}
	}
	return out
}

// TestShardedAggregateMerge pins the cross-shard merge stage: under a
// forced EName partitioning the paper's SumOfSals view (and random
// SUM/COUNT/MIN/MAX companions) group by DName, so every group's
// members are spread across shards and each maintained row is combined
// from per-shard partials. The merged result must equal unsharded
// maintenance and recomputation after every window — including
// annihilation windows that delete entire departments (the group must
// die on every shard and vanish from the merged view).
func TestShardedAggregateMerge(t *testing.T) {
	trials := 6
	if testing.Short() {
		trials = 2
	}
	counts := shardCounts(t)
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			factory := aggFactory(func(db *corpus.Database) []algebra.Node {
				rng := rand.New(rand.NewSource(int64(4100 + trial)))
				return randomAggViews(rng, db)
			})

			// Unsharded baseline over an identical database. The windows
			// are generated against its evolving state, and expected view
			// contents are snapshotted after each window.
			setup, err := factory()
			if err != nil {
				t.Fatal(err)
			}
			vs := tracks.RootSet(setup.D)
			serial, err := maintain.New(setup.D, setup.Store, cost.PageIO{}, vs.Clone())
			if err != nil {
				t.Fatal(err)
			}
			roots := setup.D.Roots
			windows, expected := mergeWindows(t, setup, serial, roots)

			for _, n := range counts {
				n := n
				t.Run(fmt.Sprintf("shards%d", n), func(t *testing.T) {
					s, err := maintain.NewSharded(factory, maintain.ShardedConfig{
						Shards:      n,
						PartitionBy: "EName",
						VS:          vs.Clone(),
						Workers:     1 + trial%4,
					})
					if err != nil {
						t.Fatal(err)
					}
					if n > 1 {
						spanning := 0
						for _, vp := range s.Part.Views {
							if vp.Class == maintain.ShardSpanning {
								spanning++
							}
						}
						if spanning == 0 {
							t.Fatalf("EName partitioning produced no spanning views: %s", s.Part.Describe())
						}
					}
					for w, window := range windows {
						if _, err := s.ApplyBatch(window); err != nil {
							t.Fatalf("window %d: %v", w, err)
						}
						for ri, e := range roots {
							want := expected[w][ri]
							got := s.Contents(e)
							if !rowsEqual(got, want) {
								t.Fatalf("window %d: root %s diverged\nsharded: %v\nserial:  %v", w, e, got, want)
							}
							if drift, err := s.Drift(e); err != nil || drift != "" {
								t.Fatalf("window %d: root %s drift %q err %v", w, e, drift, err)
							}
						}
					}
				})
			}
		})
	}
}

// mergeWindows generates the merge-test workload against the baseline's
// evolving state, applying each window to the serial maintainer as it is
// built and snapshotting the expected contents of every root after each.
// Windows 2 and 3 are the annihilation pair: window 2 deletes every
// employee of two departments (killing their groups on every shard),
// window 3 rebirths one of them.
func mergeWindows(t *testing.T, setup *maintain.ShardSetup, serial *maintain.Maintainer, roots []*dag.EqNode) ([][]txn.Transaction, [][][]storage.Row) {
	t.Helper()
	empDef := setup.Cat.MustGet("Emp")
	empRel, ok := setup.Store.Get("Emp")
	if !ok {
		t.Fatal("no Emp relation")
	}
	mkTxn := func(name string, kind txn.Kind, d *delta.Delta) txn.Transaction {
		ty := &txn.Type{Name: name, Weight: 1,
			Updates: []txn.RelUpdate{{Rel: "Emp", Kind: kind, Size: float64(d.Size())}}}
		return txn.Transaction{Type: ty, Updates: map[string]*delta.Delta{"Emp": d}}
	}
	var windows [][]txn.Transaction
	var expected [][][]storage.Row
	push := func(w []txn.Transaction) {
		if _, err := serial.ApplyBatch(w); err != nil {
			t.Fatalf("baseline window %d: %v", len(windows), err)
		}
		windows = append(windows, w)
		snap := make([][]storage.Row, len(roots))
		for i, e := range roots {
			snap[i] = sortedContents(serial, e)
		}
		expected = append(expected, snap)
	}

	// Window 0: salary modifications spread over every department.
	mod := delta.New(empDef.Schema)
	for i, row := range empRel.ScanFree() {
		if i%3 != 0 {
			continue
		}
		nt := row.Tuple.Clone()
		nt[2] = value.NewInt(nt[2].I + int64(7*i+13))
		// Clone the old side too: ScanFree rows alias Emp's storage and
		// this delta is replayed into the sharded runs after the baseline
		// has mutated (and recycled) those slots.
		mod.Modify(row.Tuple.Clone(), nt, row.Count)
	}
	push([]txn.Transaction{mkTxn(">Emp", txn.Modify, mod)})

	// Window 1: hires into department 0 and brand-new departments only —
	// departments 1 and 2 are annihilated next and must stay untouched.
	ins := delta.New(empDef.Schema)
	for i := 0; i < 5; i++ {
		dept := corpus.DeptName(0)
		if i >= 3 {
			dept = fmt.Sprintf("dxnew%d", i)
		}
		ins.Insert(value.Tuple{
			value.NewString(fmt.Sprintf("zz_new_%02d", i)),
			value.NewString(dept),
			value.NewInt(int64(90 + 11*i)),
		}, 1)
	}
	push([]txn.Transaction{mkTxn("+Emp", txn.Insert, ins)})

	// Window 2: annihilate two whole departments — every group member
	// goes, across every shard they were spread over.
	del := delta.New(empDef.Schema)
	for _, row := range empRel.ScanFree() {
		dn := row.Tuple[1].S
		if dn == corpus.DeptName(1) || dn == corpus.DeptName(2) {
			del.Delete(row.Tuple.Clone(), row.Count)
		}
	}
	push([]txn.Transaction{mkTxn("-Emp", txn.Delete, del)})

	// Window 3: rebirth one annihilated department with new members.
	reb := delta.New(empDef.Schema)
	for i := 0; i < 3; i++ {
		reb.Insert(value.Tuple{
			value.NewString(fmt.Sprintf("zz_reb_%02d", i)),
			value.NewString(corpus.DeptName(1)),
			value.NewInt(int64(150 + i)),
		}, 1)
	}
	push([]txn.Transaction{mkTxn("+Emp", txn.Insert, reb)})

	return windows, expected
}

// fuzz routing substrate: the paper's corporate schema + ProblemDept
// DAG, analyzed once (read-only; routers are built per execution).
var routeFuzzOnce struct {
	sync.Once
	d  *dag.DAG
	vs tracks.ViewSet
}

func routeFuzzDAG(tb testing.TB) (*dag.DAG, tracks.ViewSet) {
	routeFuzzOnce.Do(func() {
		db := corpus.NewDatabase(corpus.Config{Departments: 3, EmpsPerDept: 3, ADeptsEveryN: 2})
		d, err := dag.FromTree(db.ProblemDept())
		if err != nil {
			panic(err)
		}
		if _, err := d.Expand(rules.Default(), 200); err != nil {
			panic(err)
		}
		routeFuzzOnce.d = d
		routeFuzzOnce.vs = tracks.RootSet(d)
	})
	return routeFuzzOnce.d, routeFuzzOnce.vs
}

// FuzzShardRoute pins the router contract: routing is deterministic
// and stable across router instances, total (every tuple lands on
// exactly one shard in [0, n)), and re-partitioning the same bag at a
// different shard count yields an equivalent bag — no tuple is lost,
// duplicated or split. Seeds derive from testdata/corporate.sql.
func FuzzShardRoute(f *testing.F) {
	if data, err := os.ReadFile("../../testdata/corporate.sql"); err == nil {
		strs := regexp.MustCompile(`'([^']*)'`).FindAllStringSubmatch(string(data), -1)
		nums := regexp.MustCompile(`\b\d+\b`).FindAllString(string(data), -1)
		for i := 0; i+1 < len(strs) && i < 16; i += 2 {
			sal := int64(100)
			if i/2 < len(nums) {
				if v, err := strconv.ParseInt(nums[i/2], 10, 64); err == nil {
					sal = v
				}
			}
			f.Add(strs[i][1], strs[i+1][1], sal, uint8(i+1), uint8(2*i+3))
		}
	}
	f.Add("e0000_00", "d0000", int64(100), uint8(4), uint8(8))
	f.Add("", "", int64(0), uint8(0), uint8(255))
	f.Fuzz(func(t *testing.T, name, dname string, sal int64, a, b uint8) {
		d, vs := routeFuzzDAG(t)
		na := 1 + int(a)%8
		nb := 1 + int(b)%8
		pa := maintain.AnalyzePartitioning(d, vs, "DName", na)
		if pa.Reason != "" {
			t.Fatalf("ProblemDept must partition on DName: %s", pa.Reason)
		}
		if pa.Effective != na {
			t.Fatalf("effective %d, want %d", pa.Effective, na)
		}
		tuple := value.Tuple{value.NewString(name), value.NewString(dname), value.NewInt(sal)}
		ra := pa.NewRouter()
		s1 := ra.Route("Emp", tuple)
		if s1 < 0 || s1 >= na {
			t.Fatalf("route %d out of [0,%d)", s1, na)
		}
		if s2 := ra.Route("Emp", tuple); s2 != s1 {
			t.Fatalf("unstable route: %d then %d", s1, s2)
		}
		if s3 := pa.NewRouter().Route("Emp", tuple); s3 != s1 {
			t.Fatalf("router instances disagree: %d vs %d", s1, s3)
		}
		// Same partition value ⇒ same shard, whatever the rest holds.
		alt := value.Tuple{value.NewString(name + "x"), value.NewString(dname), value.NewInt(sal + 1)}
		if sAlt := ra.Route("Emp", alt); sAlt != s1 {
			t.Fatalf("partition column ignored: %q routed to %d and %d", dname, s1, sAlt)
		}
		// Unknown relations route by whole tuple and stay total.
		if s := ra.Route("NoSuchRel", tuple); s < 0 || s >= na {
			t.Fatalf("whole-tuple route %d out of [0,%d)", s, na)
		}
		// Re-partition equivalence: a derived bag splits into exactly
		// one shard per tuple at every shard count, and the shard
		// bags union back to the original bag.
		bag := make([]value.Tuple, 0, 8)
		for i := 0; i < 8; i++ {
			bag = append(bag, value.Tuple{
				value.NewString(fmt.Sprintf("%s_%d", name, i)),
				value.NewString(fmt.Sprintf("%s_%d", dname, i%3)),
				value.NewInt(sal + int64(i)),
			})
		}
		for _, n := range []int{na, nb} {
			p := maintain.AnalyzePartitioning(d, vs, "DName", n)
			r := p.NewRouter()
			var enc value.KeyEncoder
			orig := map[string]int{}
			union := map[string]int{}
			perShard := make([]int, n)
			for _, tp := range bag {
				orig[string(enc.Key(tp))]++
				s := r.Route("Emp", tp)
				if s < 0 || s >= n {
					t.Fatalf("n=%d: route %d out of range", n, s)
				}
				perShard[s]++
				union[string(enc.Key(tp))]++
			}
			total := 0
			for _, c := range perShard {
				total += c
			}
			if total != len(bag) {
				t.Fatalf("n=%d: %d tuples routed, want %d", n, total, len(bag))
			}
			for k, c := range orig {
				if union[k] != c {
					t.Fatalf("n=%d: bag not preserved at key %x", n, k)
				}
			}
		}
	})
}

// TestPartitionFallback pins the analysis fallback: a partition column
// no join condition equates forces Effective=1 with a recorded reason,
// and the resulting single-shard pipeline still maintains correctly.
func TestPartitionFallback(t *testing.T) {
	factory := aggFactory(func(db *corpus.Database) []algebra.Node {
		return []algebra.Node{db.ProblemDept()}
	})
	vsSetup, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	vs := tracks.RootSet(vsSetup.D)
	s, err := maintain.NewSharded(factory, maintain.ShardedConfig{
		Shards:      4,
		PartitionBy: "Budget", // joins equate DName, never Budget
		VS:          vs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Part.Effective != 1 || s.Part.Reason == "" {
		t.Fatalf("expected fallback to 1 shard with a reason, got %s", s.Part.Describe())
	}
	if s.NumShards() != 1 {
		t.Fatalf("fallback built %d shards", s.NumShards())
	}
	for _, e := range s.D.Roots {
		if drift, err := s.Drift(e); err != nil || drift != "" {
			t.Fatalf("fallback drift %q err %v", drift, err)
		}
	}
}

// TestChoosePartitionColumn pins the auto-choice: the corporate DAG's
// only join-compatible column is DName.
func TestChoosePartitionColumn(t *testing.T) {
	d, vs := routeFuzzDAG(t)
	if col := maintain.ChoosePartitionColumn(d, vs); col != "DName" {
		t.Fatalf("chose %q, want DName", col)
	}
}
