package storage

import (
	"container/list"

	"repro/internal/obs"
)

// Process-wide mirrors of read-probe outcomes across all buffers.
var (
	obsBufferHits   = obs.C("storage.buffer.hits")
	obsBufferMisses = obs.C("storage.buffer.misses")
)

// Buffer is an LRU page cache. The paper's Section 3.6 assumes "none of
// the data is memory-resident initially" and charges every page touch;
// attaching a Buffer to a Store relaxes that assumption so the effect of
// residency on the paper's numbers can be measured (ablation A5). Reads
// of buffered pages are free; writes are write-through (always charged)
// and leave the page resident.
//
// Page identities follow the engine's unclustered model: every stored
// tuple is its own page, and every hash-index bucket is its own page.
type Buffer struct {
	capacity int
	lru      *list.List // front = most recently used; values are page ids
	index    map[string]*list.Element

	// Hits and Misses count read probes (writes are not counted).
	Hits, Misses int64
}

// NewBuffer returns an LRU buffer holding up to capacity pages.
// A nil *Buffer (or capacity <= 0) disables buffering.
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		return nil
	}
	return &Buffer{
		capacity: capacity,
		lru:      list.New(),
		index:    map[string]*list.Element{},
	}
}

// Len returns the number of resident pages.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	return b.lru.Len()
}

// read probes the buffer for a page: on a hit the page moves to the MRU
// position and no I/O is due; on a miss the page is admitted (evicting
// the LRU page if full) and the caller charges the read.
func (b *Buffer) read(id string) (hit bool) {
	if b == nil {
		return false
	}
	if el, ok := b.index[id]; ok {
		b.lru.MoveToFront(el)
		b.Hits++
		obsBufferHits.Inc()
		return true
	}
	b.Misses++
	obsBufferMisses.Inc()
	b.admit(id)
	return false
}

// write admits a page after a write-through (the write itself is always
// charged by the caller).
func (b *Buffer) write(id string) {
	if b == nil {
		return
	}
	if el, ok := b.index[id]; ok {
		b.lru.MoveToFront(el)
		return
	}
	b.admit(id)
}

func (b *Buffer) admit(id string) {
	for b.lru.Len() >= b.capacity {
		back := b.lru.Back()
		b.lru.Remove(back)
		delete(b.index, back.Value.(string))
	}
	b.index[id] = b.lru.PushFront(id)
}

// drop evicts a page (a deleted tuple's page is gone).
func (b *Buffer) drop(id string) {
	if b == nil {
		return
	}
	if el, ok := b.index[id]; ok {
		b.lru.Remove(el)
		delete(b.index, id)
	}
}
