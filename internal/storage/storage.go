// Package storage implements the physical substrate: stored multiset
// relations with hash indexes and page-I/O accounting that follows the
// cost conventions of the paper's Section 3.6 exactly:
//
//   - all indexes are hash indexes with no overflow pages;
//   - tuples are not clustered, so every tuple touched by an indexed read
//     costs one relation-page read;
//   - an indexed lookup costs one index-page read plus one relation-page
//     read per tuple returned;
//   - applying a batch of updates costs one index-page read per index
//     (plus one index-page write when the indexed columns change), one
//     relation-page read per modified or deleted tuple, and one
//     relation-page write per modified or inserted tuple;
//   - nothing is memory-resident unless a relation is explicitly marked
//     Resident, in which case touching it is free (used for ablations).
//
// The engine is in-memory — only the accounting is "paged" — which keeps
// experiments deterministic and laptop-scale while reporting the same
// quantity the paper does: page I/Os.
//
// Physical layout: rows live in a flat entries slice (first-insertion
// order, which fixes scan order) addressed by open-addressed
// bytemap.Map tables probed directly on value.KeyEncoder byte slices —
// both the row directory and every hash-index bucket directory — so the
// hot apply/lookup path materializes no string keys and performs no
// per-operation heap allocation. Stored tuples are cloned out of
// whatever buffer the caller handed in (mutation batches may be built
// in per-window arenas), so relation state never aliases caller memory;
// the copies live in a per-relation paged slab (tupleSlab), so the
// resident set is a few slab blocks per relation rather than one
// GC-tracked object per tuple.
package storage

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/bytemap"
	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/value"
)

// Registry mirrors of the I/O charges, by kind. They are incremented in
// exactly the places an IOCounter is charged — same Resident and buffer
// gating — so their accounting is charge-identical to the paper's,
// aggregated process-wide across stores.
var (
	obsIndexReads  = obs.C("storage.io.index_reads")
	obsIndexWrites = obs.C("storage.io.index_writes")
	obsPageReads   = obs.C("storage.io.page_reads")
	obsPageWrites  = obs.C("storage.io.page_writes")
)

// Open-index probe accounting, published as window deltas at the end of
// each ApplyBatch (per-probe atomics would put the metric on the hot
// path it is meant to observe).
var (
	obsProbeSteps = obs.C("storage.openindex.probes")
	obsProbeOps   = obs.C("storage.openindex.probe_ops")
	obsProbeMax   = obs.G("storage.openindex.max_probe")
)

// Tuple-slab accounting: allocation and release are separate monotonic
// counters (retained = allocated − released), so the exposition stays
// counter-shaped while compaction swaps still show up.
var (
	obsSlabBlockAllocs = obs.C("storage.slab.blocks_allocated")
	obsSlabBlockFrees  = obs.C("storage.slab.blocks_released")
	obsSlabBytesAlloc  = obs.C("storage.slab.bytes_allocated")
	obsSlabBytesFreed  = obs.C("storage.slab.bytes_released")
	obsSlabSlotReuse   = obs.C("storage.slab.slots_recycled")
)

// IOCounter accumulates page I/O charges.
//
// Concurrency contract: all mutation goes through atomic operations
// (the charge paths, AddCounter and Reset), so a counter may be read
// with Snapshot/Total at any time — including by the metrics endpoint —
// without synchronizing with chargers. Plain field access and
// whole-struct copies are only safe on counters no other goroutine is
// touching (private per-worker counters, or any counter between
// operations in single-threaded code, which is what the tests do).
type IOCounter struct {
	IndexReads  int64
	IndexWrites int64
	PageReads   int64
	PageWrites  int64
}

// Total returns the total number of page I/Os.
func (c *IOCounter) Total() int64 {
	s := c.Snapshot()
	return s.IndexReads + s.IndexWrites + s.PageReads + s.PageWrites
}

// Snapshot returns an atomically read copy of the counter, safe against
// concurrent charging.
func (c *IOCounter) Snapshot() IOCounter {
	return IOCounter{
		IndexReads:  atomic.LoadInt64(&c.IndexReads),
		IndexWrites: atomic.LoadInt64(&c.IndexWrites),
		PageReads:   atomic.LoadInt64(&c.PageReads),
		PageWrites:  atomic.LoadInt64(&c.PageWrites),
	}
}

// AddCounter atomically folds o's charges into c. The batched
// maintenance pipeline uses it to merge per-worker counters back into
// the store's shared counter while readers may be watching.
func (c *IOCounter) AddCounter(o IOCounter) {
	atomic.AddInt64(&c.IndexReads, o.IndexReads)
	atomic.AddInt64(&c.IndexWrites, o.IndexWrites)
	atomic.AddInt64(&c.PageReads, o.PageReads)
	atomic.AddInt64(&c.PageWrites, o.PageWrites)
}

// Reset zeroes the counter.
func (c *IOCounter) Reset() {
	atomic.StoreInt64(&c.IndexReads, 0)
	atomic.StoreInt64(&c.IndexWrites, 0)
	atomic.StoreInt64(&c.PageReads, 0)
	atomic.StoreInt64(&c.PageWrites, 0)
}

// Sub returns the difference c - o (I/Os charged since snapshot o).
func (c IOCounter) Sub(o IOCounter) IOCounter {
	return IOCounter{
		IndexReads:  c.IndexReads - o.IndexReads,
		IndexWrites: c.IndexWrites - o.IndexWrites,
		PageReads:   c.PageReads - o.PageReads,
		PageWrites:  c.PageWrites - o.PageWrites,
	}
}

// String renders the counter compactly.
func (c IOCounter) String() string {
	return fmt.Sprintf("total=%d (idxR=%d idxW=%d pageR=%d pageW=%d)",
		c.Total(), c.IndexReads, c.IndexWrites, c.PageReads, c.PageWrites)
}

// Row is a stored tuple with its bag multiplicity.
type Row struct {
	Tuple value.Tuple
	Count int64
}

// entry is one stored tuple. Entries are appended to a flat slice in
// first-insertion order and never removed (a fully deleted tuple keeps
// its slot at count zero so a reinsert reuses its original scan
// position); kref locates the tuple's canonical key bytes inside the
// row directory's arena.
type entry struct {
	tuple value.Tuple
	count int64
	kref  bytemap.Ref
	// freedSeq is the batch fence at which the entry last died (count
	// reached zero). A free-list record whose seq doesn't match is stale
	// — the entry was revived and re-freed since, and only the record
	// from the latest death may harvest the slot (see allocTuple).
	freedSeq uint64
	// indexed marks the entry as present in every hash-index bucket it
	// belongs to. Index removal is lazy: a fully deleted tuple keeps its
	// bucket positions (readers skip count-zero entries), so hot-bucket
	// deletes cost nothing and a revived tuple is not re-appended.
	// Compaction prunes dead entries from buckets wholesale.
	indexed bool
}

// tupleSlab bump-allocates the Value arrays backing stored tuples out
// of paged blocks, so a relation's resident set is a few hundred slab
// blocks instead of one GC-tracked object per tuple. The slab is
// grow-only between sweeps: blocks are appended as tuples arrive and
// individual tuples are never freed — a fully deleted tuple's storage
// is reclaimed when the lazy-deletion sweep (maybeCompact) or Restore
// copies the live tuples into the relation's spare slab and swaps the
// two (see Relation.slab/spare). Swapping instead of reallocating is
// what keeps steady-state compaction allocation-free, at the cost of
// holding roughly twice the live tuple bytes — the paper's
// space-for-time trade applied to the allocator itself.
type tupleSlab struct {
	blocks [][]value.Value
	bi     int // current block index
	off    int // next free slot in blocks[bi]
}

const slabBlockVals = 4096 // Values per slab block

// alloc reserves an n-Value slot in the slab without initializing it
// (the slot may hold stale Values from a retired generation; callers
// either copy over it or hand it out as dead free-slot storage that is
// overwritten on harvest). Oversize tuples get a dedicated block.
func (s *tupleSlab) alloc(n int) value.Tuple {
	for {
		if s.bi < len(s.blocks) {
			blk := s.blocks[s.bi]
			if s.off+n <= len(blk) {
				dst := blk[s.off : s.off+n : s.off+n]
				s.off += n
				return value.Tuple(dst)
			}
			s.bi++
			s.off = 0
			continue
		}
		size := slabBlockVals
		if n > size {
			size = n
		}
		s.blocks = append(s.blocks, make([]value.Value, size))
		obsSlabBlockAllocs.Inc()
		obsSlabBytesAlloc.Add(int64(size) * int64(value.Size))
	}
}

// clone copies t into the slab and returns the stable copy.
func (s *tupleSlab) clone(t value.Tuple) value.Tuple {
	if len(t) == 0 {
		return value.Tuple{}
	}
	dst := s.alloc(len(t))
	copy(dst, t)
	return dst
}

// rewind resets the bump cursor so existing blocks are refilled from
// the start. Only safe when every tuple previously served from the
// slab is dead (the compaction swap's contract).
func (s *tupleSlab) rewind() {
	s.bi, s.off = 0, 0
}

// release drops every block to the collector (Restore). Rows already
// handed out keep the old blocks alive for as long as they are
// referenced.
func (s *tupleSlab) release() {
	var vals int64
	for _, blk := range s.blocks {
		vals += int64(len(blk))
	}
	obsSlabBlockFrees.Add(int64(len(s.blocks)))
	obsSlabBytesFreed.Add(vals * int64(value.Size))
	s.blocks = nil
	s.bi, s.off = 0, 0
}

type hashIndex struct {
	def    catalog.IndexDef
	colPos []int
	// buckets maps projected-key bytes to a bucket id; lists[id] holds
	// the entry ids in the bucket, in insertion order (Lookup output
	// order depends on it). Lists may contain dead entry ids (lazy index
	// deletion); readers skip entries with count zero. nlists counts the
	// live bucket ids — lists beyond it are spare capacity kept across
	// compactions.
	buckets bytemap.Map[int32]
	lists   [][]int32
	nlists  int
	// enc/enc2 are reused projected-key scratch encoders; two because a
	// modify needs the old and new bucket keys side by side.
	enc  value.KeyEncoder
	enc2 value.KeyEncoder
	// Per-batch first-touch bucket bookkeeping (ApplyBatch general
	// path), reset per call.
	touched bytemap.Map[bool]
	order   []bytemap.Ref
}

func (ix *hashIndex) keyOf(t value.Tuple) []byte {
	return ix.enc.ProjectedKey(t, ix.colPos)
}

func (ix *hashIndex) keyOf2(t value.Tuple) []byte {
	return ix.enc2.ProjectedKey(t, ix.colPos)
}

// lookupPlan caches the column resolution of a Lookup shape so repeated
// probes from compiled track plans allocate nothing.
type lookupPlan struct {
	cols   []string
	pos    []int // cols resolved against the schema
	ix     *hashIndex
	keyPos []int // positions in cols feeding the index columns
}

// Relation is a stored multiset relation with hash indexes.
type Relation struct {
	Def *catalog.TableDef
	// Resident marks the relation memory-resident: no I/O is charged for
	// touching it. Off by default, matching the paper's assumption.
	Resident bool

	entries []entry
	slab    tupleSlab // backing store for every entry's tuple
	// spare is the previous generation's slab, retained across the
	// compaction swap so the next compaction refills its blocks instead
	// of allocating. Its contents stay intact for one full compaction
	// cycle — at least a window — which is longer than any reader is
	// allowed to hold a row (rows die at the relation's next mutation).
	spare tupleSlab
	// freeSlots lists dead entries (by id, per tuple arity) whose slab
	// slot a later insert may harvest once slotGrace batch fences have
	// passed; see allocTuple. The stock survives compaction: kept
	// records are re-slotted into the fresh slab generation as donor
	// entries. batchSeq counts ApplyBatch fences on this relation and
	// dates each freed slot; freeStock counts outstanding records (one
	// per pushed, not-yet-popped slot) so maybeCompact can separate
	// recyclable dead entries from reclaimable ones.
	freeSlots map[int]*slotList
	batchSeq  uint64
	freeStock int
	rows      bytemap.Map[int32] // canonical tuple key bytes → entry id
	indexes   []*hashIndex
	io        *IOCounter
	store     *Store
	// liveTuples counts distinct live tuples so Card is O(1) and
	// cardinality statistics stay fresh between full refreshes.
	liveTuples int

	// Reused key-encoding scratch for the apply path; encNew/encOld are
	// live simultaneously during a modify. encAux serves the read paths
	// (Lookup probes, GetCount).
	encNew value.KeyEncoder
	encOld value.KeyEncoder
	encAux value.KeyEncoder

	plans []lookupPlan

	// Probe stats already published to the obs registry (window-delta
	// bookkeeping for publishProbeStats).
	pubProbes uint64
	pubOps    uint64
}

// MutationHook observes every ApplyBatch against a relation of the
// store, before the mutations take effect. The write-ahead log installs
// one to stage deltas for the next group commit; hooks must not mutate
// the batch.
type MutationHook func(r *Relation, batch []Mutation)

// Store is a collection of named relations sharing one I/O counter and,
// optionally, an LRU page buffer (nil reproduces the paper's cold-cache
// assumption).
type Store struct {
	IO     *IOCounter
	Buffer *Buffer
	rels   map[string]*Relation

	// FreshAlloc (testing knob) disables slab-arena tuple storage and
	// slot recycling for every relation in the store: each stored tuple
	// is an individually heap-allocated Clone, the pre-recycling
	// behavior. The differential recycling suite runs identical streams
	// through a recycled and a fresh store and asserts byte-identical
	// results; nothing in production sets this.
	FreshAlloc bool

	onMutation MutationHook
}

// SetMutationHook installs (or, with nil, removes) the store-wide
// mutation hook.
func (s *Store) SetMutationHook(h MutationHook) { s.onMutation = h }

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{IO: &IOCounter{}, rels: map[string]*Relation{}}
}

// Create allocates an empty relation for def, building its declared
// indexes. It replaces any existing relation with the same name.
func (s *Store) Create(def *catalog.TableDef) (*Relation, error) {
	r := &Relation{
		Def:   def,
		io:    s.IO,
		store: s,
	}
	for _, ixd := range def.Indexes {
		pos := make([]int, len(ixd.Columns))
		for i, col := range ixd.Columns {
			j, err := def.Schema.Resolve(col)
			if err != nil {
				return nil, fmt.Errorf("storage: index %s: %w", ixd.Name, err)
			}
			pos[i] = j
		}
		r.indexes = append(r.indexes, &hashIndex{
			def:    ixd,
			colPos: pos,
		})
	}
	s.rels[def.Name] = r
	return r, nil
}

// Get returns the named relation.
func (s *Store) Get(name string) (*Relation, bool) {
	r, ok := s.rels[name]
	return r, ok
}

// MustGet returns the named relation, panicking if absent.
func (s *Store) MustGet(name string) *Relation {
	r, ok := s.rels[name]
	if !ok {
		panic(fmt.Sprintf("storage: unknown relation %q", name))
	}
	return r
}

// Drop removes a relation from the store.
func (s *Store) Drop(name string) { delete(s.rels, name) }

// Names returns the stored relation names, sorted.
func (s *Store) Names() []string {
	out := make([]string, 0, len(s.rels))
	for n := range s.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Card returns the number of distinct tuples currently stored.
func (r *Relation) Card() int { return r.liveTuples }

// SetIOCounter redirects the relation's I/O charges to c; nil restores
// the store's shared counter. The batched maintenance pipeline gives
// each worker a private counter so that applying deltas to independent
// views in parallel needs no locks on the charging path. Callers must
// ensure no buffer is attached (buffered charging mutates shared LRU
// state) and that the relation is touched by one goroutine at a time.
func (r *Relation) SetIOCounter(c *IOCounter) {
	if c == nil {
		c = r.store.IO
	}
	r.io = c
}

// Page identities: every stored tuple is its own page and every hash
// bucket is its own index page (the unclustered model of §3.6).
//
// The charge helpers take raw tuple/bucket key bytes and materialize
// the page-ID string only when an LRU buffer is attached: the
// unbuffered path — the paper's cold-cache default and the maintenance
// hot path — charges with one atomic add and no allocation.
func (r *Relation) tuplePageID(tupleKey []byte) string {
	return "t:" + r.Def.Name + "/" + string(tupleKey)
}

func (r *Relation) indexPageID(indexName string, bucketKey []byte) string {
	return "i:" + r.Def.Name + "/" + indexName + "/" + string(bucketKey)
}

func (r *Relation) buffered() bool { return r.store != nil && r.store.Buffer != nil }

// chargeIndexRead charges one index-page read (unless resident or
// buffered).
func (r *Relation) chargeIndexRead(indexName string, bucketKey []byte) {
	if r.Resident {
		return
	}
	if r.buffered() && r.store.Buffer.read(r.indexPageID(indexName, bucketKey)) {
		return
	}
	atomic.AddInt64(&r.io.IndexReads, 1)
	obsIndexReads.Inc()
}

func (r *Relation) chargeIndexWrite(indexName string, bucketKey []byte) {
	if r.Resident {
		return
	}
	atomic.AddInt64(&r.io.IndexWrites, 1)
	obsIndexWrites.Inc()
	if r.buffered() {
		r.store.Buffer.write(r.indexPageID(indexName, bucketKey))
	}
}

func (r *Relation) chargePageRead(tupleKey []byte) {
	if r.Resident {
		return
	}
	if r.buffered() && r.store.Buffer.read(r.tuplePageID(tupleKey)) {
		return
	}
	atomic.AddInt64(&r.io.PageReads, 1)
	obsPageReads.Inc()
}

func (r *Relation) chargePageWrite(tupleKey []byte) {
	if r.Resident {
		return
	}
	atomic.AddInt64(&r.io.PageWrites, 1)
	obsPageWrites.Inc()
	if r.buffered() {
		r.store.Buffer.write(r.tuplePageID(tupleKey))
	}
}

func (r *Relation) dropPage(tupleKey []byte) {
	if r.buffered() {
		r.store.Buffer.drop(r.tuplePageID(tupleKey))
	}
}

// keyBytes returns the canonical key bytes of entry e (stable: they
// live in the row directory's append-only arena).
func (r *Relation) keyBytes(e *entry) []byte { return r.rows.KeyAt(e.kref) }

// Scan returns all rows in first-insertion order, charging one page read
// per tuple (unclustered storage).
func (r *Relation) Scan() []Row {
	out := make([]Row, 0, len(r.entries))
	for i := range r.entries {
		e := &r.entries[i]
		if e.count > 0 {
			out = append(out, Row{Tuple: e.tuple, Count: e.count})
			r.chargePageRead(r.keyBytes(e))
		}
	}
	return out
}

// ScanFree is Scan without I/O accounting; used for statistics refresh,
// snapshots and result assembly that the paper's cost model does not
// charge for.
func (r *Relation) ScanFree() []Row {
	out := make([]Row, 0, len(r.entries))
	for i := range r.entries {
		e := &r.entries[i]
		if e.count > 0 {
			out = append(out, Row{Tuple: e.tuple, Count: e.count})
		}
	}
	return out
}

// Iterate walks the live rows in first-insertion order without I/O
// accounting and without materializing a slice — the zero-copy read
// path for callers that consume rows in place. The yielded Tuple
// aliases relation storage: it is valid only until the next mutation
// (compaction may move it) and must be cloned to be retained. Iteration
// stops when yield returns false.
func (r *Relation) Iterate(yield func(Row) bool) {
	for i := range r.entries {
		e := &r.entries[i]
		if e.count > 0 && !yield(Row{Tuple: e.tuple, Count: e.count}) {
			return
		}
	}
}

func (r *Relation) findIndex(cols []string) *hashIndex {
	want := make([]string, len(cols))
	copy(want, cols)
	for i := range want {
		want[i] = bareName(want[i])
	}
	sort.Strings(want)
	for _, ix := range r.indexes {
		have := make([]string, len(ix.def.Columns))
		for i, c := range ix.def.Columns {
			have[i] = bareName(c)
		}
		sort.Strings(have)
		if eqStrings(have, want) {
			return ix
		}
	}
	return nil
}

func bareName(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// HasIndexOn reports whether the relation has a hash index on exactly the
// given columns.
func (r *Relation) HasIndexOn(cols []string) bool { return r.findIndex(cols) != nil }

// lookupPlanFor resolves (and caches) the index choice and column
// positions for a Lookup column shape. Index definitions are fixed at
// Create, so cached plans never go stale; cols are copied into the
// cache entry so callers may reuse their slice.
func (r *Relation) lookupPlanFor(cols []string) *lookupPlan {
	for i := range r.plans {
		if eqStrings(r.plans[i].cols, cols) {
			return &r.plans[i]
		}
	}
	pl := lookupPlan{cols: append([]string(nil), cols...)}
	pl.pos = make([]int, len(cols))
	for i, c := range cols {
		pl.pos[i] = r.Def.Schema.MustResolve(c)
	}
	pl.ix, pl.keyPos = r.findUsableIndex(cols)
	r.plans = append(r.plans, pl)
	return &r.plans[len(r.plans)-1]
}

// Lookup probes a hash index with the given key values and returns
// matching rows, charging one index-page read plus one page read per
// tuple touched. An index is usable when its columns are a subset of
// cols: the probe uses the indexed part and the remaining equalities are
// checked on the fetched tuples (each touched tuple costs its page read
// whether or not it survives the residual filter, per the paper's
// unclustered-storage convention). Falls back to a full scan (charged)
// when no usable index exists.
func (r *Relation) Lookup(cols []string, key value.Tuple) []Row {
	return r.LookupAppend(cols, key, nil)
}

// LookupAppend is Lookup with a caller-recycled output buffer: matching
// rows are appended to dst and the extended slice returned. Probe-heavy
// paths (the maintenance window memo) pass one long-lived buffer per
// window instead of allocating a fresh slice per probe. The appended
// rows alias relation storage under the usual Scan contract — valid
// only until the relation's next mutation.
func (r *Relation) LookupAppend(cols []string, key value.Tuple, dst []Row) []Row {
	pl := r.lookupPlanFor(cols)
	if pl.ix == nil {
		return r.scanMatch(pl, key, dst)
	}
	ix := pl.ix
	bucket := r.encAux.ProjectedKey(key, pl.keyPos)
	r.chargeIndexRead(ix.def.Name, bucket)
	if bid, ok := ix.buckets.Get(bucket); ok {
		for _, eid := range ix.lists[bid] {
			e := &r.entries[eid]
			if e.count <= 0 {
				continue
			}
			r.chargePageRead(r.keyBytes(e))
			if tupleMatches(e.tuple, pl.pos, key) {
				dst = append(dst, Row{Tuple: e.tuple, Count: e.count})
			}
		}
	}
	return dst
}

// tupleMatches reports whether t projected to pos equals key — the
// allocation-free form of t.Project(pos).Equal(key).
func tupleMatches(t value.Tuple, pos []int, key value.Tuple) bool {
	if len(pos) != len(key) {
		return false
	}
	for i, j := range pos {
		if !value.Equal(t[j], key[i]) {
			return false
		}
	}
	return true
}

// findUsableIndex returns the largest index whose columns are a subset of
// cols (bare-name comparison), plus the positions in cols supplying each
// indexed column's probe value.
func (r *Relation) findUsableIndex(cols []string) (*hashIndex, []int) {
	bare := make([]string, len(cols))
	for i, c := range cols {
		bare[i] = bareName(c)
	}
	var best *hashIndex
	var bestPos []int
	for _, ix := range r.indexes {
		pos := make([]int, 0, len(ix.def.Columns))
		ok := true
		for _, ic := range ix.def.Columns {
			found := -1
			for j, b := range bare {
				if b == bareName(ic) {
					found = j
					break
				}
			}
			if found < 0 {
				ok = false
				break
			}
			pos = append(pos, found)
		}
		if ok && (best == nil || len(ix.def.Columns) > len(best.def.Columns)) {
			best = ix
			bestPos = pos
		}
	}
	return best, bestPos
}

// scanMatch scans the relation for tuples matching key on the plan's
// columns.
func (r *Relation) scanMatch(pl *lookupPlan, key value.Tuple, dst []Row) []Row {
	for i := range r.entries {
		e := &r.entries[i]
		if e.count <= 0 {
			continue
		}
		// A scan touches every live tuple's page.
		r.chargePageRead(r.keyBytes(e))
		if tupleMatches(e.tuple, pl.pos, key) {
			dst = append(dst, Row{Tuple: e.tuple, Count: e.count})
		}
	}
	return dst
}

// GetCount returns the stored multiplicity of a tuple without charging
// I/O (bookkeeping use only).
func (r *Relation) GetCount(t value.Tuple) int64 {
	if eid, ok := r.rows.Get(r.encAux.Key(t)); ok {
		return r.entries[eid].count
	}
	return 0
}

func (r *Relation) indexInsert(t value.Tuple, eid int32) {
	for _, ix := range r.indexes {
		bk := ix.keyOf(t)
		p, _, existed := ix.buckets.GetOrPut(bk, int32(ix.nlists))
		if !existed {
			if ix.nlists == len(ix.lists) {
				ix.lists = append(ix.lists, nil)
			} else {
				ix.lists[ix.nlists] = ix.lists[ix.nlists][:0]
			}
			ix.nlists++
		}
		ix.lists[*p] = append(ix.lists[*p], eid)
	}
}

// resetIndex empties an index's directory, keeping bucket-list capacity
// for the rebuild that follows (compaction, Restore).
func (ix *hashIndex) resetIndex() {
	ix.buckets.Reset()
	ix.nlists = 0
}

// insertRaw adds count copies of t with no I/O accounting.
func (r *Relation) insertRaw(t value.Tuple, count int64) {
	r.insertRawKeyed(t, r.encNew.Key(t), count)
}

// insertRawKeyed is insertRaw with the tuple's canonical key bytes
// already encoded — the batch apply path encodes each key once and
// threads it through charging, mutation and buffer bookkeeping. tk may
// alias a reused encoder buffer; the row directory copies it.
func (r *Relation) insertRawKeyed(t value.Tuple, tk []byte, count int64) {
	p, ref, existed := r.rows.GetOrPut(tk, int32(len(r.entries)))
	if existed {
		e := &r.entries[*p]
		if e.count == 0 {
			// Revival: with lazy index deletion the entry is usually
			// still sitting in its buckets. Its tuple slot may have been
			// harvested by an insert while it was dead — re-clone.
			if e.tuple == nil {
				e.tuple = r.allocTuple(t)
			}
			if !e.indexed {
				r.indexInsert(t, *p)
				e.indexed = true
			}
			r.liveTuples++
		}
		e.count += count
		return
	}
	eid := *p
	if value.EpochChecksEnabled() {
		value.CheckEpoch(t)
	}
	// Stored copy: stored state must not alias caller buffers (per-window
	// arenas, encoder scratch) that are reset between windows, and the
	// copy lands in the relation's paged slab — preferentially in a slot
	// harvested from a dead entry — rather than as its own GC-tracked
	// object.
	r.entries = append(r.entries, entry{tuple: r.allocTuple(t), count: count, kref: ref, indexed: true})
	r.indexInsert(t, eid)
	r.liveTuples++
}

// slotRec is one harvestable dead-entry slot: the entry id plus the
// relation batch fence at which it was freed. Records in a list are in
// nondecreasing seq order (freeSlot appends at the current fence).
type slotRec struct {
	eid int32
	seq uint64
}

// slotList is a FIFO of slot records per tuple arity; head avoids
// shifting on pop and the backing array is recycled once drained.
type slotList struct {
	recs []slotRec
	head int
}

// slotGrace is how many ApplyBatch fences a freed slot must age before
// an insert may harvest it. Two fences cover every sanctioned holder of
// a dead tuple: deltas computed in a window's propagation are consumed
// by that window's applies (one fence), and a rejecting rollback
// replays inverse deltas whose tuples alias slots the forward apply
// just freed (a second fence on the same relation). Anything older is
// dead under the window ownership rule.
const slotGrace = 2

// allocTuple places t's stored copy, preferring a same-arity slab slot
// harvested from an aged dead entry over the bump allocator:
// rewrite-heavy streams (a modify deletes the old tuple and inserts
// the new one) recycle the space their own deletes freed instead of
// growing the slab until the next compaction. The donor entry's tuple
// is nilled; if that entry is later revived, insertRawKeyed re-clones
// fresh storage for it.
func (r *Relation) allocTuple(t value.Tuple) value.Tuple {
	if r.store != nil && r.store.FreshAlloc {
		return t.Clone()
	}
	if n := len(t); n > 0 && r.freeSlots != nil {
		if sl := r.freeSlots[n]; sl != nil {
			for sl.head < len(sl.recs) {
				rec := sl.recs[sl.head]
				if rec.seq+slotGrace > r.batchSeq {
					// Oldest record is still inside the grace window; so
					// is everything behind it.
					break
				}
				sl.head++
				r.freeStock--
				d := &r.entries[rec.eid]
				if d.count != 0 || d.tuple == nil || d.freedSeq != rec.seq {
					// Revived since it was freed, its slot was already
					// harvested by an earlier insert, or this record is
					// stale (the entry died again after a revival — the
					// re-death pushed a younger record, and only that one
					// may harvest the slot: this batch's own readers may
					// still alias the newer incarnation's bytes).
					continue
				}
				slot := d.tuple
				d.tuple = nil
				copy(slot, t)
				obsSlabSlotReuse.Inc()
				return slot
			}
			if sl.head == len(sl.recs) {
				sl.recs = sl.recs[:0]
				sl.head = 0
			}
		}
	}
	return r.slab.clone(t)
}

// freeSlot offers a freshly dead entry's tuple slot for reuse by an
// insert of the same arity at least slotGrace fences from now.
func (r *Relation) freeSlot(eid int32) {
	if r.store != nil && r.store.FreshAlloc {
		return
	}
	e := &r.entries[eid]
	n := len(e.tuple)
	if n == 0 {
		return
	}
	if r.freeSlots == nil {
		r.freeSlots = map[int]*slotList{}
	}
	sl := r.freeSlots[n]
	if sl == nil {
		sl = &slotList{}
		r.freeSlots[n] = sl
	}
	e.freedSeq = r.batchSeq
	if sl.head > len(sl.recs)/2 && sl.head >= 64 {
		// Slide the live tail to the front so the backing array is
		// recycled instead of growing by the popped prefix forever.
		sl.recs = sl.recs[:copy(sl.recs, sl.recs[sl.head:])]
		sl.head = 0
	}
	sl.recs = append(sl.recs, slotRec{eid: eid, seq: r.batchSeq})
	r.freeStock++
}

// clearFreeSlots empties every per-arity free list, keeping the slices
// for reuse. Called when the slab's blocks are released wholesale
// (Restore) — the recorded slots would otherwise point into freed
// storage. Compaction does NOT clear the lists; it carries them into
// the new generation (see maybeCompact).
func (r *Relation) clearFreeSlots() {
	for _, sl := range r.freeSlots {
		sl.recs = sl.recs[:0]
		sl.head = 0
	}
	r.freeStock = 0
}

// deleteRaw removes count copies of t with no I/O accounting. Counts
// floor at zero; a tuple whose count reaches zero leaves the indexes.
func (r *Relation) deleteRaw(t value.Tuple, count int64) {
	r.deleteRawKeyed(t, r.encOld.Key(t), count)
}

// deleteRawKeyed is deleteRaw with the key bytes precomputed; it
// returns the tuple's remaining multiplicity (zero when absent or fully
// deleted).
func (r *Relation) deleteRawKeyed(t value.Tuple, tk []byte, count int64) int64 {
	p := r.rows.Ptr(tk)
	if p == nil {
		return 0
	}
	e := &r.entries[*p]
	if e.count == 0 {
		return 0
	}
	e.count -= count
	if e.count <= 0 {
		e.count = 0
		// Lazy index deletion: the entry stays in its buckets (readers
		// skip count-zero entries) until the next compaction. Its tuple
		// slot goes on the free list for a later same-arity insert.
		r.liveTuples--
		r.freeSlot(*p)
	}
	return e.count
}

// maybeCompact reclaims dead entries once the reclaimable ones — dead
// entries NOT serving as free-slot stock — outnumber live tuples: the
// entries slice, row directory and every index are rebuilt from the
// live rows (preserving first-insertion scan order), dropping dead
// bucket positions and dead directory keys. Amortized O(1) per delete —
// a compaction's O(live) rebuild is paid for by the >= live deletions
// that accumulated since the last one. No I/O is charged: compaction is
// physical reorganization below the page model, like Restore.
//
// The free-slot stock survives the sweep: clearing it would starve
// allocTuple for the slotGrace windows after every compaction and
// force the rewrite churn back onto the bump allocator exactly when it
// is heaviest. Each kept record is re-slotted as a bare donor entry —
// dead, unindexed, absent from the row directory — whose tuple is an
// uninitialized slot in the fresh generation (capacity is all a dead
// slot carries; the bytes are written on harvest). Stock beyond what
// one grace period can consume is dropped oldest-first.
func (r *Relation) maybeCompact() {
	reclaimable := len(r.entries) - r.liveTuples - r.freeStock
	if reclaimable < 1024 || reclaimable <= r.liveTuples {
		return
	}
	old := r.entries
	// Validate and trim the free lists against the outgoing entries
	// BEFORE the live copy reuses the entries array in place: only each
	// record's seq and arity survive; eids are reassigned below.
	stockCap := 2*r.liveTuples + 1024
	for _, sl := range r.freeSlots {
		w := 0
		for _, rec := range sl.recs[sl.head:] {
			d := &old[rec.eid]
			if d.count != 0 || d.tuple == nil || d.freedSeq != rec.seq {
				continue // revived, harvested, or stale — not stock
			}
			sl.recs[w] = slotRec{eid: -1, seq: rec.seq}
			w++
		}
		sl.recs = sl.recs[:w]
		sl.head = 0
		if w > stockCap {
			// Keep the newest records; slots older than the cap would
			// outlast any plausible demand before the next sweep.
			sl.recs = sl.recs[:copy(sl.recs, sl.recs[w-stockCap:])]
		}
	}
	r.entries = old[:0]
	r.rows.Reset()
	for _, ix := range r.indexes {
		ix.resetIndex()
	}
	// Live tuples move into the spare slab, whose blocks were retired a
	// full compaction cycle ago: every row served from them is dead by
	// contract, so the blocks are refilled in place instead of
	// reallocated. The outgoing slab becomes the next spare.
	fresh := r.spare
	fresh.rewind()
	for i := range old {
		e := old[i]
		if e.count <= 0 {
			continue
		}
		if r.store == nil || !r.store.FreshAlloc {
			e.tuple = fresh.clone(e.tuple)
		}
		eid := int32(len(r.entries))
		_, ref, _ := r.rows.GetOrPut(r.encNew.Key(e.tuple), eid)
		e.kref = ref
		e.indexed = true
		r.entries = append(r.entries, e)
		r.indexInsert(e.tuple, eid)
	}
	// Re-slot the surviving stock as donor entries in the fresh
	// generation. In steady state the slots come from retained blocks,
	// so carrying the stock allocates nothing.
	r.freeStock = 0
	for arity, sl := range r.freeSlots {
		for i := range sl.recs {
			eid := int32(len(r.entries))
			r.entries = append(r.entries, entry{
				tuple:    fresh.alloc(arity),
				freedSeq: sl.recs[i].seq,
			})
			sl.recs[i].eid = eid
			r.freeStock++
		}
	}
	r.spare = r.slab
	r.slab = fresh
}

// publishProbeStats folds the open-index probe counters accumulated
// since the last publication into the obs registry: one pass over the
// relation's tables per ApplyBatch, nothing on the per-probe path.
func (r *Relation) publishProbeStats() {
	probes, ops, maxP := r.rows.ProbeStats()
	for _, ix := range r.indexes {
		p, o, m := ix.buckets.ProbeStats()
		probes += p
		ops += o
		if m > maxP {
			maxP = m
		}
	}
	if d := probes - r.pubProbes; d > 0 {
		obsProbeSteps.Add(int64(d))
		r.pubProbes = probes
	}
	if d := ops - r.pubOps; d > 0 {
		obsProbeOps.Add(int64(d))
		r.pubOps = ops
	}
	if float64(maxP) > obsProbeMax.Value() {
		obsProbeMax.Set(float64(maxP))
	}
}

// Load bulk-inserts rows without I/O accounting (initial population; the
// paper's costs never include initial materialization I/O).
func (r *Relation) Load(rows []Row) {
	for _, row := range rows {
		if row.Count == 0 {
			row.Count = 1
		}
		r.insertRaw(row.Tuple, row.Count)
	}
}

// LoadTuples bulk-inserts tuples with count 1, without I/O accounting.
func (r *Relation) LoadTuples(tuples []value.Tuple) {
	for _, t := range tuples {
		r.insertRaw(t, 1)
	}
}

// RefreshStats recomputes Card and per-column distinct counts into the
// relation's table definition.
func (r *Relation) RefreshStats() {
	distinct := make(map[string]float64, len(r.Def.Schema.Cols))
	// One reused encoder + single-value tuple + seen-set across columns,
	// walking the zero-copy iterator: the only per-row cost is an encode
	// into the scratch buffer, and a string is allocated only once per
	// distinct value.
	var enc value.KeyEncoder
	one := make(value.Tuple, 1)
	seen := map[string]struct{}{}
	for ci, col := range r.Def.Schema.Cols {
		clear(seen)
		r.Iterate(func(row Row) bool {
			one[0] = row.Tuple[ci]
			kb := enc.Key(one)
			if _, ok := seen[string(kb)]; !ok {
				seen[string(kb)] = struct{}{}
			}
			return true
		})
		distinct[col.Name] = float64(len(seen))
	}
	r.Def.Stats = catalog.Stats{Card: float64(r.liveTuples), Distinct: distinct}
}

// Version returns the relation's batch-fence counter: it advances on
// every non-empty ApplyBatch, so a caller that reads it before and
// after a Snapshot can detect whether a maintenance window landed in
// between (a torn seed) and retry. It is not synchronized — read it
// only from the maintenance goroutine or while the writer is quiescent.
func (r *Relation) Version() uint64 { return r.batchSeq }

// Snapshot captures the current contents for later restore: owning
// copies, independent of the relation's slab.
func (r *Relation) Snapshot() []Row {
	return r.SnapshotAppend(make([]Row, 0, r.liveTuples))
}

// SnapshotAppend appends owning copies of the live rows to dst — the
// reusable-buffer form of Snapshot for callers (checkpoints, periodic
// savepoints) that take snapshots repeatedly and want to amortize the
// slice. Tuples are still cloned: a snapshot must survive arbitrary
// later mutation and compaction of the relation.
func (r *Relation) SnapshotAppend(dst []Row) []Row {
	for i := range r.entries {
		e := &r.entries[i]
		if e.count > 0 {
			dst = append(dst, Row{Tuple: e.tuple.Clone(), Count: e.count})
		}
	}
	return dst
}

// RetainWhere keeps only the rows keep accepts and rebuilds the
// indexes, without I/O accounting — the partition primitive that
// restricts a freshly built relation to one shard's segment.
func (r *Relation) RetainWhere(keep func(t value.Tuple, count int64) bool) {
	var kept []Row
	for _, row := range r.ScanFree() {
		if keep(row.Tuple, row.Count) {
			kept = append(kept, row)
		}
	}
	r.Restore(kept)
}

// Restore replaces the contents with a snapshot, without I/O accounting.
// The snapshot may alias the relation's own slab (RetainWhere feeds
// ScanFree rows straight back), so the old slab is dropped — not reused
// — and Load clones each row into a fresh one.
func (r *Relation) Restore(rows []Row) {
	r.entries = r.entries[:0]
	r.rows.Reset()
	r.liveTuples = 0
	r.slab.release()
	r.spare.release()
	r.clearFreeSlots()
	for _, ix := range r.indexes {
		ix.resetIndex()
	}
	r.Load(rows)
}
