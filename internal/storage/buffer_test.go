package storage

import (
	"testing"

	"repro/internal/value"
)

func TestBufferMakesRepeatedLookupsFree(t *testing.T) {
	st, rel := newEmpRel(t)
	st.Buffer = NewBuffer(64)
	for j := 0; j < 10; j++ {
		rel.LoadTuples([]value.Tuple{emp(string(rune('a'+j)), "d1", 100)})
	}
	st.IO.Reset()
	rel.Lookup([]string{"DName"}, value.Tuple{value.NewString("d1")})
	if got := st.IO.Total(); got != 11 {
		t.Fatalf("cold lookup = %d, want 11", got)
	}
	st.IO.Reset()
	rel.Lookup([]string{"DName"}, value.Tuple{value.NewString("d1")})
	if got := st.IO.Total(); got != 0 {
		t.Errorf("warm lookup = %d, want 0 (%v)", got, st.IO)
	}
	if st.Buffer.Hits == 0 {
		t.Error("buffer hits not counted")
	}
}

func TestBufferEvictsLRU(t *testing.T) {
	st, rel := newEmpRel(t)
	// Two pages of capacity: the index bucket page plus one tuple.
	st.Buffer = NewBuffer(2)
	rel.LoadTuples([]value.Tuple{
		emp("e1", "d1", 100),
		emp("e2", "d2", 100),
	})
	rel.Lookup([]string{"DName"}, value.Tuple{value.NewString("d1")}) // caches d1 bucket + e1
	st.IO.Reset()
	rel.Lookup([]string{"DName"}, value.Tuple{value.NewString("d2")}) // evicts d1 entries
	if st.IO.Total() != 2 {
		t.Fatalf("second cold lookup = %d, want 2", st.IO.Total())
	}
	st.IO.Reset()
	rel.Lookup([]string{"DName"}, value.Tuple{value.NewString("d1")})
	if st.IO.Total() != 2 {
		t.Errorf("evicted lookup should be cold again, charged %d", st.IO.Total())
	}
}

func TestBufferWriteThrough(t *testing.T) {
	st, rel := newEmpRel(t)
	st.Buffer = NewBuffer(16)
	rel.LoadTuples([]value.Tuple{emp("e1", "d1", 100)})
	st.IO.Reset()
	// A modification writes through (charged) and leaves the page hot.
	rel.ApplyBatch([]Mutation{{Old: emp("e1", "d1", 100), New: emp("e1", "d1", 150)}})
	if st.IO.PageWrites != 1 {
		t.Errorf("write-through must charge the write: %v", st.IO)
	}
	st.IO.Reset()
	rel.Lookup([]string{"DName"}, value.Tuple{value.NewString("d1")})
	if st.IO.Total() != 0 {
		t.Errorf("post-write read should be buffered, charged %v", st.IO)
	}
}

func TestBufferDropsDeletedTuplePages(t *testing.T) {
	st, rel := newEmpRel(t)
	st.Buffer = NewBuffer(16)
	rel.LoadTuples([]value.Tuple{emp("e1", "d1", 100)})
	rel.Lookup([]string{"DName"}, value.Tuple{value.NewString("d1")})
	resident := st.Buffer.Len()
	rel.ApplyBatch([]Mutation{{Old: emp("e1", "d1", 100)}})
	if st.Buffer.Len() >= resident+1 {
		t.Errorf("deleted tuple's page should leave the buffer: %d -> %d", resident, st.Buffer.Len())
	}
}

func TestNilBufferIsCold(t *testing.T) {
	if NewBuffer(0) != nil {
		t.Error("capacity 0 should disable buffering")
	}
	var b *Buffer
	if b.read("x") || b.Len() != 0 {
		t.Error("nil buffer must behave as always-miss")
	}
	b.write("x") // must not panic
	b.drop("x")
}

// TestPaperNumbersUnchangedWithoutBuffer re-checks a headline charge with
// buffering explicitly disabled (regression guard for the refactor).
func TestPaperNumbersUnchangedWithoutBuffer(t *testing.T) {
	st, rel := newEmpRel(t)
	for j := 0; j < 10; j++ {
		rel.LoadTuples([]value.Tuple{emp(string(rune('a'+j)), "d1", 100)})
	}
	st.IO.Reset()
	var batch []Mutation
	for j := 0; j < 10; j++ {
		name := string(rune('a' + j))
		batch = append(batch, Mutation{
			Old: emp(name, "d1", 100),
			New: emp(name, "d1", 107),
		})
	}
	rel.ApplyBatch(batch)
	if got := st.IO.Total(); got != 21 {
		t.Errorf("batch of 10 modifies = %d, want 21", got)
	}
	// Repeating it is just as expensive without a buffer.
	st.IO.Reset()
	var batch2 []Mutation
	for j := 0; j < 10; j++ {
		name := string(rune('a' + j))
		batch2 = append(batch2, Mutation{
			Old: emp(name, "d1", 107),
			New: emp(name, "d1", 114),
		})
	}
	rel.ApplyBatch(batch2)
	if got := st.IO.Total(); got != 21 {
		t.Errorf("repeat batch = %d, want 21 (no residual caching)", got)
	}
}
