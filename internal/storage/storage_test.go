package storage

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/value"
)

func empDef() *catalog.TableDef {
	return &catalog.TableDef{
		Name: "Emp",
		Schema: catalog.NewSchema(
			catalog.Column{Qualifier: "Emp", Name: "EName", Type: value.String},
			catalog.Column{Qualifier: "Emp", Name: "DName", Type: value.String},
			catalog.Column{Qualifier: "Emp", Name: "Salary", Type: value.Int},
		),
		Keys:    [][]string{{"EName"}},
		Indexes: []catalog.IndexDef{{Name: "emp_dname", Columns: []string{"DName"}}},
	}
}

func emp(e, d string, sal int64) value.Tuple {
	return value.Tuple{value.NewString(e), value.NewString(d), value.NewInt(sal)}
}

func newEmpRel(t *testing.T) (*Store, *Relation) {
	t.Helper()
	st := NewStore()
	rel, err := st.Create(empDef())
	if err != nil {
		t.Fatal(err)
	}
	return st, rel
}

func TestLoadAndScan(t *testing.T) {
	st, rel := newEmpRel(t)
	rel.LoadTuples([]value.Tuple{
		emp("e1", "d1", 100),
		emp("e2", "d1", 200),
		emp("e3", "d2", 300),
	})
	if rel.Card() != 3 {
		t.Fatalf("Card = %d, want 3", rel.Card())
	}
	if st.IO.Total() != 0 {
		t.Errorf("Load must be free, charged %v", st.IO)
	}
	rows := rel.Scan()
	if len(rows) != 3 {
		t.Fatalf("Scan returned %d rows", len(rows))
	}
	// Unclustered: one page read per tuple.
	if st.IO.PageReads != 3 || st.IO.Total() != 3 {
		t.Errorf("Scan charge = %v, want 3 page reads", st.IO)
	}
}

// TestLookupCostMatchesPaper checks the §3.6 convention: an indexed read
// of the 10 employees of one department costs 11 page I/Os (1 index page
// + 10 tuple pages).
func TestLookupCostMatchesPaper(t *testing.T) {
	st, rel := newEmpRel(t)
	for j := 0; j < 10; j++ {
		rel.LoadTuples([]value.Tuple{emp(string(rune('a'+j)), "d1", 100)})
	}
	rel.LoadTuples([]value.Tuple{emp("z", "d2", 100)})
	rows := rel.Lookup([]string{"DName"}, value.Tuple{value.NewString("d1")})
	if len(rows) != 10 {
		t.Fatalf("Lookup returned %d rows, want 10", len(rows))
	}
	if got := st.IO.Total(); got != 11 {
		t.Errorf("Lookup cost = %d, want 11 (%v)", got, st.IO)
	}
	if st.IO.IndexReads != 1 || st.IO.PageReads != 10 {
		t.Errorf("charge split = %v", st.IO)
	}
}

func TestLookupQualifiedColumn(t *testing.T) {
	_, rel := newEmpRel(t)
	rel.LoadTuples([]value.Tuple{emp("e1", "d1", 100)})
	rows := rel.Lookup([]string{"Emp.DName"}, value.Tuple{value.NewString("d1")})
	if len(rows) != 1 {
		t.Errorf("qualified Lookup returned %d rows", len(rows))
	}
}

func TestLookupWithoutIndexFallsBackToScan(t *testing.T) {
	st, rel := newEmpRel(t)
	rel.LoadTuples([]value.Tuple{
		emp("e1", "d1", 100),
		emp("e2", "d1", 200),
	})
	rows := rel.Lookup([]string{"Salary"}, value.Tuple{value.NewInt(200)})
	if len(rows) != 1 {
		t.Fatalf("scan-match returned %d rows", len(rows))
	}
	// Full scan charge: every live tuple's page.
	if st.IO.PageReads != 2 || st.IO.IndexReads != 0 {
		t.Errorf("fallback charge = %v", st.IO)
	}
}

// TestModifyBatchCostMatchesPaper checks the two §3.6 update costs:
// modifying 1 tuple of an indexed relation costs 3 (index read + tuple
// read + tuple write); modifying 10 tuples costs 21.
func TestModifyBatchCostMatchesPaper(t *testing.T) {
	st, rel := newEmpRel(t)
	for j := 0; j < 10; j++ {
		rel.LoadTuples([]value.Tuple{emp(string(rune('a'+j)), "d1", 100)})
	}
	st.IO.Reset()
	rel.ApplyBatch([]Mutation{{
		Old: emp("a", "d1", 100),
		New: emp("a", "d1", 150),
	}})
	if got := st.IO.Total(); got != 3 {
		t.Errorf("single modify = %d I/Os, want 3 (%v)", got, st.IO)
	}
	st.IO.Reset()
	var batch []Mutation
	for j := 0; j < 10; j++ {
		name := string(rune('a' + j))
		sal := int64(100)
		if j == 0 {
			sal = 150
		}
		batch = append(batch, Mutation{
			Old: emp(name, "d1", sal),
			New: emp(name, "d1", sal+7),
		})
	}
	rel.ApplyBatch(batch)
	if got := st.IO.Total(); got != 21 {
		t.Errorf("batch of 10 modifies = %d I/Os, want 21 (%v)", got, st.IO)
	}
	if st.IO.IndexWrites != 0 {
		t.Errorf("non-indexed-column modify should not write the index: %v", st.IO)
	}
}

func TestModifyIndexedColumnWritesIndex(t *testing.T) {
	st, rel := newEmpRel(t)
	rel.LoadTuples([]value.Tuple{emp("e1", "d1", 100)})
	st.IO.Reset()
	rel.ApplyBatch([]Mutation{{
		Old: emp("e1", "d1", 100),
		New: emp("e1", "d2", 100),
	}})
	// Moving a tuple between hash buckets touches both bucket pages:
	// two reads, two writes.
	if st.IO.IndexWrites != 2 || st.IO.IndexReads != 2 {
		t.Errorf("moving a tuple between buckets must rewrite both buckets: %v", st.IO)
	}
	rows := rel.Lookup([]string{"DName"}, value.Tuple{value.NewString("d2")})
	if len(rows) != 1 {
		t.Errorf("tuple should be findable under new key, got %d rows", len(rows))
	}
	rows = rel.Lookup([]string{"DName"}, value.Tuple{value.NewString("d1")})
	if len(rows) != 0 {
		t.Errorf("tuple should be gone from old bucket, got %d rows", len(rows))
	}
}

func TestInsertDeleteCounts(t *testing.T) {
	st, rel := newEmpRel(t)
	st.IO.Reset()
	rel.ApplyBatch([]Mutation{{New: emp("e1", "d1", 100)}})
	// Insert: index read+write, tuple write.
	if st.IO.IndexReads != 1 || st.IO.IndexWrites != 1 || st.IO.PageWrites != 1 || st.IO.PageReads != 0 {
		t.Errorf("insert charge = %v", st.IO)
	}
	if rel.Card() != 1 {
		t.Errorf("Card = %d after insert", rel.Card())
	}
	st.IO.Reset()
	rel.ApplyBatch([]Mutation{{Old: emp("e1", "d1", 100)}})
	if st.IO.IndexReads != 1 || st.IO.IndexWrites != 1 || st.IO.PageReads != 1 || st.IO.PageWrites != 0 {
		t.Errorf("delete charge = %v", st.IO)
	}
	if rel.Card() != 0 {
		t.Errorf("Card = %d after delete", rel.Card())
	}
}

func TestBagCounts(t *testing.T) {
	_, rel := newEmpRel(t)
	tup := emp("e1", "d1", 100)
	rel.Load([]Row{{Tuple: tup, Count: 3}})
	if got := rel.GetCount(tup); got != 3 {
		t.Errorf("GetCount = %d, want 3", got)
	}
	rel.ApplyBatch([]Mutation{{Old: tup, Count: 2}})
	if got := rel.GetCount(tup); got != 1 {
		t.Errorf("GetCount after partial delete = %d, want 1", got)
	}
	rel.ApplyBatch([]Mutation{{Old: tup, Count: 5}})
	if got := rel.GetCount(tup); got != 0 {
		t.Errorf("GetCount floors at 0, got %d", got)
	}
	if rel.Card() != 0 {
		t.Error("fully deleted tuple should not be live")
	}
	rows := rel.Lookup([]string{"DName"}, value.Tuple{value.NewString("d1")})
	if len(rows) != 0 {
		t.Error("dead tuple must leave the index")
	}
}

func TestEmptyBatchIsFree(t *testing.T) {
	st, rel := newEmpRel(t)
	rel.ApplyBatch(nil)
	if st.IO.Total() != 0 {
		t.Errorf("empty batch charged %v", st.IO)
	}
}

func TestResidentRelationIsFree(t *testing.T) {
	st, rel := newEmpRel(t)
	rel.Resident = true
	rel.LoadTuples([]value.Tuple{emp("e1", "d1", 100)})
	rel.Scan()
	rel.Lookup([]string{"DName"}, value.Tuple{value.NewString("d1")})
	rel.ApplyBatch([]Mutation{{Old: emp("e1", "d1", 100), New: emp("e1", "d1", 200)}})
	if st.IO.Total() != 0 {
		t.Errorf("resident relation charged %v", st.IO)
	}
}

func TestSnapshotRestore(t *testing.T) {
	_, rel := newEmpRel(t)
	rel.LoadTuples([]value.Tuple{emp("e1", "d1", 100), emp("e2", "d2", 200)})
	snap := rel.Snapshot()
	rel.ApplyBatch([]Mutation{
		{Old: emp("e1", "d1", 100)},
		{New: emp("e3", "d3", 300)},
	})
	rel.Restore(snap)
	if rel.Card() != 2 {
		t.Fatalf("Card after restore = %d", rel.Card())
	}
	rows := rel.Lookup([]string{"DName"}, value.Tuple{value.NewString("d1")})
	if len(rows) != 1 {
		t.Error("restored tuple should be indexed")
	}
	rows = rel.Lookup([]string{"DName"}, value.Tuple{value.NewString("d3")})
	if len(rows) != 0 {
		t.Error("post-snapshot insert should be gone")
	}
}

func TestRefreshStats(t *testing.T) {
	_, rel := newEmpRel(t)
	rel.LoadTuples([]value.Tuple{
		emp("e1", "d1", 100),
		emp("e2", "d1", 200),
		emp("e3", "d2", 300),
	})
	rel.RefreshStats()
	st := rel.Def.Stats
	if st.Card != 3 {
		t.Errorf("Card = %g", st.Card)
	}
	if st.Distinct["DName"] != 2 {
		t.Errorf("Distinct[DName] = %g", st.Distinct["DName"])
	}
	if st.Distinct["EName"] != 3 {
		t.Errorf("Distinct[EName] = %g", st.Distinct["EName"])
	}
	if got := st.Fanout("DName"); got != 1.5 {
		t.Errorf("Fanout(DName) = %g", got)
	}
}
