package storage

import (
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/value"
)

// refBag is the trivially-correct reference model: a map from tuple keys
// to counts.
type refBag struct {
	counts map[string]int64
	tuples map[string]value.Tuple
}

func newRefBag() *refBag {
	return &refBag{counts: map[string]int64{}, tuples: map[string]value.Tuple{}}
}

func (b *refBag) apply(m Mutation) {
	n := m.Count
	if n == 0 {
		n = 1
	}
	if m.Old != nil {
		k := m.Old.Key()
		b.counts[k] -= n
		if b.counts[k] <= 0 {
			delete(b.counts, k)
			delete(b.tuples, k)
		}
	}
	if m.New != nil {
		k := m.New.Key()
		b.counts[k] += n
		b.tuples[k] = m.New
	}
}

func (b *refBag) matching(pos []int, key value.Tuple) map[string]int64 {
	out := map[string]int64{}
	for k, t := range b.tuples {
		if t.Project(pos).Equal(key) {
			out[k] = b.counts[k]
		}
	}
	return out
}

// TestRelationAgainstReferenceModel drives random mutation batches
// against both the storage engine and the reference bag, comparing
// contents and index lookups after every batch.
func TestRelationAgainstReferenceModel(t *testing.T) {
	def := &catalog.TableDef{
		Name: "T",
		Schema: catalog.NewSchema(
			catalog.Column{Qualifier: "T", Name: "A", Type: value.Int},
			catalog.Column{Qualifier: "T", Name: "B", Type: value.Int},
		),
		Indexes: []catalog.IndexDef{{Name: "t_a", Columns: []string{"A"}}},
	}
	st := NewStore()
	rel, err := st.Create(def)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefBag()
	rng := rand.New(rand.NewSource(11))

	tup := func() value.Tuple {
		return value.Tuple{
			value.NewInt(int64(rng.Intn(5))),
			value.NewInt(int64(rng.Intn(5))),
		}
	}
	existing := func() value.Tuple {
		for k := range ref.tuples {
			return ref.tuples[k]
		}
		return nil
	}

	for step := 0; step < 500; step++ {
		var batch []Mutation
		for i := 0; i < 1+rng.Intn(3); i++ {
			switch rng.Intn(3) {
			case 0:
				batch = append(batch, Mutation{New: tup(), Count: int64(1 + rng.Intn(2))})
			case 1:
				if old := existing(); old != nil {
					batch = append(batch, Mutation{Old: old, Count: 1})
				}
			default:
				if old := existing(); old != nil {
					batch = append(batch, Mutation{Old: old, New: tup(), Count: 1})
				}
			}
		}
		// Reference first (mutations reference current contents; the
		// engine floors deletes at zero the same way).
		for _, m := range batch {
			ref.apply(m)
		}
		rel.ApplyBatch(batch)

		// Compare full contents.
		got := map[string]int64{}
		for _, row := range rel.ScanFree() {
			got[row.Tuple.Key()] = row.Count
		}
		if len(got) != len(ref.counts) {
			t.Fatalf("step %d: %d live tuples, reference has %d", step, len(got), len(ref.counts))
		}
		for k, n := range ref.counts {
			if got[k] != n {
				t.Fatalf("step %d: tuple count %d, reference %d", step, got[k], n)
			}
		}
		// Compare an index lookup.
		probe := value.Tuple{value.NewInt(int64(rng.Intn(5)))}
		rows := rel.Lookup([]string{"A"}, probe)
		want := ref.matching([]int{0}, probe)
		if len(rows) != len(want) {
			t.Fatalf("step %d: lookup %d rows, reference %d", step, len(rows), len(want))
		}
		for _, row := range rows {
			if want[row.Tuple.Key()] != row.Count {
				t.Fatalf("step %d: lookup count mismatch", step)
			}
		}
	}
}

// TestLookupPartialIndexUse: a probe binding more columns than the index
// covers must use the index and filter the rest — and charge per touched
// bucket tuple, not per match.
func TestLookupPartialIndexUse(t *testing.T) {
	def := &catalog.TableDef{
		Name: "T",
		Schema: catalog.NewSchema(
			catalog.Column{Qualifier: "T", Name: "A", Type: value.Int},
			catalog.Column{Qualifier: "T", Name: "B", Type: value.Int},
		),
		Indexes: []catalog.IndexDef{{Name: "t_a", Columns: []string{"A"}}},
	}
	st := NewStore()
	rel, _ := st.Create(def)
	for b := 0; b < 4; b++ {
		rel.LoadTuples([]value.Tuple{{value.NewInt(1), value.NewInt(int64(b))}})
	}
	rel.LoadTuples([]value.Tuple{{value.NewInt(2), value.NewInt(0)}})

	st.IO.Reset()
	rows := rel.Lookup([]string{"A", "B"}, value.Tuple{value.NewInt(1), value.NewInt(2)})
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	// 1 index page + 4 bucket tuples touched.
	if st.IO.Total() != 5 {
		t.Errorf("charge = %v, want 5", st.IO)
	}
}
