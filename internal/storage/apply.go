package storage

import (
	"bytes"

	"repro/internal/value"
)

// Mutation is one element of a batch update to a stored relation.
// Exactly one of the three shapes is used:
//
//   - insert: New set, Old nil
//   - delete: Old set, New nil
//   - modify: both set (Old is replaced by New)
//
// Count is the bag multiplicity affected (defaults to 1).
type Mutation struct {
	Old   value.Tuple
	New   value.Tuple
	Count int64
}

// IsInsert reports whether m is an insertion.
func (m Mutation) IsInsert() bool { return m.Old == nil && m.New != nil }

// IsDelete reports whether m is a deletion.
func (m Mutation) IsDelete() bool { return m.Old != nil && m.New == nil }

// IsModify reports whether m is an in-place modification.
func (m Mutation) IsModify() bool { return m.Old != nil && m.New != nil }

// ApplyBatch applies a batch of mutations with the paper's I/O charges:
//
//   - per index, one index-page read per distinct hash bucket the batch
//     touches (the paper's single-bucket batches charge exactly one),
//     plus one index-page write per bucket whose entries change
//     (inserts, deletes, or modifications that move the indexed key);
//   - one relation-page read per modified or deleted tuple;
//   - one relation-page write per modified or inserted tuple.
//
// An empty batch charges nothing. Mutation tuples may live in a
// per-window arena: the relation clones anything it stores, so the
// caller may reset the arena once the batch returns.
func (r *Relation) ApplyBatch(batch []Mutation) {
	if len(batch) == 0 {
		return
	}
	// Advance the batch fence: slots freed slotGrace fences ago become
	// harvestable for this batch's inserts (see allocTuple).
	r.batchSeq++
	if r.store != nil {
		if h := r.store.onMutation; h != nil {
			h(r, batch)
		}
	}
	if len(batch) == 1 {
		// Fast path: a single mutation touches at most two buckets per
		// index, so the charges are computed directly, skipping the
		// per-bucket bookkeeping. Charge order and amounts match the
		// general path exactly.
		m := batch[0]
		for _, ix := range r.indexes {
			switch {
			case m.IsInsert():
				bk := ix.keyOf(m.New)
				r.chargeIndexRead(ix.def.Name, bk)
				r.chargeIndexWrite(ix.def.Name, bk)
			case m.IsDelete():
				bk := ix.keyOf(m.Old)
				r.chargeIndexRead(ix.def.Name, bk)
				r.chargeIndexWrite(ix.def.Name, bk)
			case m.IsModify():
				ob := ix.keyOf(m.Old)
				if nb := ix.keyOf2(m.New); bytes.Equal(ob, nb) {
					r.chargeIndexRead(ix.def.Name, ob)
				} else {
					r.chargeIndexRead(ix.def.Name, ob)
					r.chargeIndexWrite(ix.def.Name, ob)
					r.chargeIndexRead(ix.def.Name, nb)
					r.chargeIndexWrite(ix.def.Name, nb)
				}
			}
		}
		r.applyMutations(batch)
		r.publishProbeStats()
		r.maybeCompact()
		return
	}
	// Index page charges, per distinct touched bucket in first-touch
	// order. The bookkeeping table is an open-addressed scratch map
	// reset per call: bucket keys are copied into its arena exactly
	// once, and the first-touch order is kept as arena refs.
	for _, ix := range r.indexes {
		ix.touched.Reset()
		ix.order = ix.order[:0]
		note := func(bucket []byte, dirty bool) {
			p, ref, existed := ix.touched.GetOrPut(bucket, dirty)
			if !existed {
				ix.order = append(ix.order, ref)
			} else if dirty {
				*p = true
			}
		}
		for _, m := range batch {
			switch {
			case m.IsInsert():
				note(ix.keyOf(m.New), true)
			case m.IsDelete():
				note(ix.keyOf(m.Old), true)
			case m.IsModify():
				ob, nb := ix.keyOf(m.Old), ix.keyOf2(m.New)
				if bytes.Equal(ob, nb) {
					note(ob, false)
				} else {
					note(ob, true)
					note(nb, true)
				}
			}
		}
		for _, ref := range ix.order {
			bucket := ix.touched.KeyAt(ref)
			r.chargeIndexRead(ix.def.Name, bucket)
			if dirty, _ := ix.touched.Get(bucket); dirty {
				r.chargeIndexWrite(ix.def.Name, bucket)
			}
		}
	}
	r.applyMutations(batch)
	r.publishProbeStats()
	r.maybeCompact()
}

// applyMutations performs the tuple-level part of ApplyBatch: relation
// page charges plus the in-memory mutations themselves. Each tuple's
// canonical key is encoded exactly once per mutation side into a reused
// scratch buffer and threaded through charging, mutation and buffer
// bookkeeping.
func (r *Relation) applyMutations(batch []Mutation) {
	for _, m := range batch {
		count := m.Count
		if count == 0 {
			count = 1
		}
		switch {
		case m.IsInsert():
			nk := r.encNew.Key(m.New)
			r.chargePageWrite(nk)
			r.insertRawKeyed(m.New, nk, count)
		case m.IsDelete():
			ok := r.encOld.Key(m.Old)
			r.chargePageRead(ok)
			if r.deleteRawKeyed(m.Old, ok, count) == 0 {
				r.dropPage(ok)
			}
		case m.IsModify():
			ok, nk := r.encOld.Key(m.Old), r.encNew.Key(m.New)
			r.chargePageRead(ok)
			if r.deleteRawKeyed(m.Old, ok, count) == 0 && !bytes.Equal(ok, nk) {
				r.dropPage(ok)
			}
			r.chargePageWrite(nk)
			r.insertRawKeyed(m.New, nk, count)
		}
	}
}
