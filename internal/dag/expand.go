package dag

import (
	"fmt"

	"repro/internal/algebra"
)

// Rule is an equivalence rule: given an operation node, it produces zero
// or more alternative expressions for the op's parent class. Returned
// trees may contain Ref leaves pointing at existing equivalence nodes.
type Rule interface {
	Name() string
	Apply(d *DAG, op *OpNode) []algebra.Node
}

// ExpandResult reports what an Expand call did.
type ExpandResult struct {
	Passes       int
	Applications int // rule applications that produced at least one tree
	OpLimitHit   bool
}

// Expand applies the rules to fixpoint (or until the DAG holds maxOps
// operation nodes; 0 means no limit). Each (operation node, rule) pair is
// applied at most once; merges may remove operation nodes, which is
// handled by consulting liveness before applying.
func (d *DAG) Expand(rules []Rule, maxOps int) (ExpandResult, error) {
	var res ExpandResult
	done := map[string]bool{}
	for {
		res.Passes++
		progress := false
		for _, op := range d.Ops() {
			if !d.live(op) {
				continue
			}
			for _, r := range rules {
				key := fmt.Sprintf("%d/%s", op.ID, r.Name())
				if done[key] {
					continue
				}
				done[key] = true
				trees := r.Apply(d, op)
				if len(trees) > 0 {
					res.Applications++
				}
				parent := op.Parent
				for _, tr := range trees {
					if _, err := d.Incorporate(tr, parent); err != nil {
						return res, fmt.Errorf("dag: rule %s: %w", r.Name(), err)
					}
					progress = true
					if maxOps > 0 {
						if _, ops := d.Stats(); ops >= maxOps {
							res.OpLimitHit = true
							return res, nil
						}
					}
				}
				if !d.live(op) {
					break // op was merged away while incorporating
				}
			}
		}
		if !progress {
			return res, nil
		}
	}
}

// live reports whether the op is still attached to the DAG.
func (d *DAG) live(op *OpNode) bool {
	if op.Parent == nil {
		return false
	}
	for _, o := range op.Parent.Ops {
		if o == op {
			return true
		}
	}
	return false
}
