package dag_test

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/corpus"
	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/rules"
	"repro/internal/storage"
	"repro/internal/value"
)

func smallDB() *corpus.Database {
	return corpus.NewDatabase(corpus.Config{Departments: 4, EmpsPerDept: 3, ADeptsEveryN: 2})
}

func TestFromTreeStructure(t *testing.T) {
	db := smallDB()
	d, err := dag.FromTree(db.ProblemDept())
	if err != nil {
		t.Fatal(err)
	}
	eqs, ops := d.Stats()
	// Select, Aggregate, Join + 2 leaves.
	if eqs != 5 || ops != 3 {
		t.Errorf("initial DAG = %d eqs, %d ops; want 5, 3\n%s", eqs, ops, d.Render())
	}
	if d.Root == nil || d.Root.IsLeaf() {
		t.Fatal("root missing")
	}
	if got := len(d.NonLeafEqs()); got != 3 {
		t.Errorf("non-leaf eqs = %d, want 3", got)
	}
	rels := d.BaseRelsOf(d.Root)
	if len(rels) != 2 || rels[0] != "Dept" || rels[1] != "Emp" {
		t.Errorf("BaseRelsOf(root) = %v", rels)
	}
}

func TestCommonSubexpressionShared(t *testing.T) {
	db := smallDB()
	// Join(Emp, Dept) appears twice; the memo must share it.
	join := func() algebra.Node {
		return algebra.NewJoin(
			[]algebra.JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}},
			algebra.Scan(db.Catalog.MustGet("Emp")),
			algebra.Scan(db.Catalog.MustGet("Dept")),
		)
	}
	u := algebra.NewUnion(join(), join())
	d, err := dag.FromTree(u)
	if err != nil {
		t.Fatal(err)
	}
	eqs, ops := d.Stats()
	// Union + shared join + 2 leaves = 4 eqs; Union + Join = 2 ops.
	if eqs != 4 || ops != 2 {
		t.Errorf("DAG = %d eqs, %d ops; want 4, 2\n%s", eqs, ops, d.Render())
	}
	unionOp := d.Root.Ops[0]
	if unionOp.Children[0] != unionOp.Children[1] {
		t.Error("identical subexpressions must map to one equivalence node")
	}
}

func TestIncorporateMergesEquivalents(t *testing.T) {
	db := smallDB()
	d, err := dag.FromTree(db.ProblemDept())
	if err != nil {
		t.Fatal(err)
	}
	// Manually declare the alternative (Figure 1 left tree) equivalent
	// to the root.
	alt := db.ProblemDeptAlt()
	eq, err := d.Incorporate(alt, d.Root)
	if err != nil {
		t.Fatal(err)
	}
	if eq != d.Root {
		t.Error("Incorporate under root should land on root")
	}
	if len(d.Root.Ops) != 2 {
		t.Errorf("root should now have 2 alternatives, has %d", len(d.Root.Ops))
	}
	// The SumOfSals subview must now be a node of the DAG.
	if d.FindEq(db.SumOfSals()) == nil {
		t.Error("SumOfSals equivalence node missing after incorporation")
	}
}

func expandProblemDept(t *testing.T, db *corpus.Database) *dag.DAG {
	t.Helper()
	d, err := dag.FromTree(db.ProblemDept())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Expand(rules.Default(), 200); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestExpandGeneratesFigure2 checks that the default rules grow the
// ProblemDept DAG with the paper's alternative: an aggregate over Emp
// alone (SumOfSals, node N3) joined with Dept.
func TestExpandGeneratesFigure2(t *testing.T) {
	db := smallDB()
	d := expandProblemDept(t, db)
	n3 := d.FindEq(db.SumOfSals())
	if n3 == nil {
		t.Fatalf("expansion did not produce the SumOfSals node:\n%s", d.Render())
	}
	// The root must have gained at least one alternative op beyond the
	// original Select.
	if len(d.Root.Ops) < 1 {
		t.Fatal("root lost its ops")
	}
	// N3 must feed a join with Dept somewhere in the DAG.
	foundJoin := false
	for _, p := range n3.Parents {
		if p.Kind() == algebra.KindJoin {
			foundJoin = true
		}
	}
	if !foundJoin {
		t.Errorf("SumOfSals node is not joined with Dept:\n%s", d.Render())
	}
}

// TestAllRootTreesEvaluateEqual is the semantic soundness property of the
// rule engine: every expression tree the expanded DAG represents for the
// root must evaluate to the same result.
func TestAllRootTreesEvaluateEqual(t *testing.T) {
	db := smallDB()
	// Make the view non-empty so differences would show.
	rel := db.Store.MustGet("Emp")
	old := value.Tuple{
		value.NewString(corpus.EmpName(0, 0)),
		value.NewString(corpus.DeptName(0)),
		value.NewInt(corpus.BaseSalary),
	}
	newT := old.Clone()
	newT[2] = value.NewInt(10_000)
	rel.ApplyBatch([]storage.Mutation{{Old: old, New: newT}})

	d := expandProblemDept(t, db)
	trees := d.Trees(d.Root, 50)
	if len(trees) < 2 {
		t.Fatalf("expected multiple root trees, got %d", len(trees))
	}
	ev := exec.NewFree(db.Store)
	ref, err := ev.Eval(trees[0])
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range trees[1:] {
		res, err := ev.Eval(tr)
		if err != nil {
			t.Fatalf("tree %d: %v\n%s", i+1, err, algebra.Render(tr))
		}
		if !resultsMatch(ref, res) {
			t.Errorf("tree %d disagrees with tree 0:\n%s", i+1, algebra.Render(tr))
		}
	}
}

func resultsMatch(a, b *exec.Result) bool {
	if a.Card() != b.Card() {
		return false
	}
	// Compare on the shared column set by name (column order may differ
	// across alternatives only via projections, which realign, so direct
	// positional comparison of sorted rows is fine here).
	as, bs := a.Sorted(), b.Sorted()
	for i := range as {
		if !as[i].Tuple.Equal(bs[i].Tuple) || as[i].Count != bs[i].Count {
			return false
		}
	}
	return true
}

// TestADeptsStatusExpansionFindsV1 verifies the Figure 3 space: from the
// query-optimal shape, the rules produce the view-maintenance shape whose
// subview V1 joins Dept with the aggregate over Emp.
func TestADeptsStatusExpansionFindsV1(t *testing.T) {
	db := smallDB()
	d, err := dag.FromTree(db.ADeptsStatus())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Expand(rules.Default(), 400); err != nil {
		t.Fatal(err)
	}
	// V1-like node: SumOfSals joined with Dept (either orientation).
	sum := d.FindEq(db.SumOfSals())
	if sum == nil {
		t.Fatalf("SumOfSals missing from ADeptsStatus DAG:\n%s", d.Render())
	}
	v1 := false
	for _, p := range sum.Parents {
		if p.Kind() != algebra.KindJoin {
			continue
		}
		for _, c := range p.Children {
			if c.IsLeaf() && c.BaseRel == "Dept" {
				v1 = true
			}
		}
	}
	if !v1 {
		t.Errorf("V1 (SumOfSals ⋈ Dept) not represented:\n%s", d.Render())
	}
	// All root trees still agree semantically.
	trees := d.Trees(d.Root, 30)
	if len(trees) < 2 {
		t.Fatalf("expected multiple ADeptsStatus trees, got %d", len(trees))
	}
	ev := exec.NewFree(db.Store)
	ref, err := ev.Eval(trees[0])
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range trees[1:] {
		res, err := ev.Eval(tr)
		if err != nil {
			t.Fatalf("tree %d: %v\n%s", i+1, err, algebra.Render(tr))
		}
		if !resultsMatch(ref, res) {
			t.Errorf("ADeptsStatus tree %d disagrees:\n%s", i+1, algebra.Render(tr))
		}
	}
}

func TestJoinAssocGeneratesAlternative(t *testing.T) {
	db := smallDB()
	d, err := dag.FromTree(db.ADeptsStatus())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Expand(rules.Default(), 400); err != nil {
		t.Fatal(err)
	}
	// Emp ⋈ ADepts must appear as a class after reassociation.
	empAdepts := algebra.NewJoin(
		[]algebra.JoinCond{{Left: "Emp.DName", Right: "ADepts.DName"}},
		algebra.Scan(db.Catalog.MustGet("Emp")),
		algebra.Scan(db.Catalog.MustGet("ADepts")),
	)
	if d.FindEq(empAdepts) == nil {
		t.Errorf("join associativity did not produce Emp⋈ADepts:\n%s", d.Render())
	}
}

func TestArticulationEqs(t *testing.T) {
	db := smallDB()
	d := expandProblemDept(t, db)
	arts := d.ArticulationEqs()
	// The SumOfSals node must NOT be an articulation node (the root can
	// bypass it via the aggregate-over-join alternative). The DAG is
	// small; just check articulation nodes separate the graph plausibly:
	// every articulation node has both parents and ops.
	for _, a := range arts {
		if len(a.Parents) == 0 || len(a.Ops) == 0 {
			t.Errorf("articulation node %s has no parents or ops", a)
		}
	}
	// A pure chain Select(Aggregate(Emp)) has its middle node as an
	// articulation point.
	chain := algebra.NewSelect(
		expr.Compare(expr.GT, expr.C("SumSal"), expr.IntLit(0)),
		db.SumOfSals().(*algebra.Aggregate),
	)
	cd, err := dag.FromTree(chain)
	if err != nil {
		t.Fatal(err)
	}
	arts = cd.ArticulationEqs()
	if len(arts) != 1 {
		t.Fatalf("chain articulation nodes = %v, want exactly the aggregate", arts)
	}
	if arts[0].Expr.Kind() != algebra.KindAggregate {
		t.Errorf("articulation node should be the aggregate, got %v", arts[0].Expr.Kind())
	}
}

func TestRenderMentionsAllNodes(t *testing.T) {
	db := smallDB()
	d := expandProblemDept(t, db)
	out := d.Render()
	for _, want := range []string{"Emp", "Dept", "Select[", "Aggregate[", "Join["} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestTreesLimit(t *testing.T) {
	db := smallDB()
	d := expandProblemDept(t, db)
	trees := d.Trees(d.Root, 2)
	if len(trees) != 2 {
		t.Errorf("Trees limit not honored: got %d", len(trees))
	}
}

func TestRepTreeIsOriginal(t *testing.T) {
	db := smallDB()
	orig := db.ProblemDept()
	d, err := dag.FromTree(orig)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Expand(rules.Default(), 200); err != nil {
		t.Fatal(err)
	}
	rep := d.RepTree(d.Root)
	if rep.Label() != orig.Label() {
		t.Errorf("RepTree changed after expansion:\n%s\nvs\n%s",
			algebra.Render(rep), algebra.Render(orig))
	}
}

// TestCongruenceCascade: declaring two subexpressions equivalent makes
// their identical parents merge automatically (congruence closure).
func TestCongruenceCascade(t *testing.T) {
	db := smallDB()
	emp := algebra.Scan(db.Catalog.MustGet("Emp"))
	dept := algebra.Scan(db.Catalog.MustGet("Dept"))
	// Two selections with different predicates; join each with Dept; a
	// union on top keeps both reachable.
	selA := algebra.NewSelect(expr.Compare(expr.GT, expr.C("Emp.Salary"), expr.IntLit(1)), emp)
	selB := algebra.NewSelect(expr.Compare(expr.GE, expr.C("Emp.Salary"), expr.IntLit(2)), emp)
	joinA := algebra.NewJoin([]algebra.JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}}, selA, dept)
	joinB := algebra.NewJoin([]algebra.JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}}, selB, dept)
	top := algebra.NewUnion(joinA, joinB)

	d, err := dag.FromTree(top)
	if err != nil {
		t.Fatal(err)
	}
	eqA := d.FindEq(selA)
	eqB := d.FindEq(selB)
	jA := d.FindEq(joinA)
	jB := d.FindEq(joinB)
	if eqA == nil || eqB == nil || jA == nil || jB == nil || jA == jB {
		t.Fatal("setup failed")
	}
	eqsBefore, _ := d.Stats()
	// Declare the two selections equivalent: the joins above them have
	// identical operators over now-identical children, so they must merge
	// too — and the union's two children become one class.
	if _, err := d.Incorporate(dag.Ref{Eq: eqB}, eqA); err != nil {
		t.Fatal(err)
	}
	jA2 := d.FindEq(joinA)
	jB2 := d.FindEq(joinB)
	if jA2 != jB2 || jA2 == nil {
		t.Errorf("parents did not merge: %v vs %v\n%s", jA2, jB2, d.Render())
	}
	eqsAfter, _ := d.Stats()
	if eqsAfter >= eqsBefore {
		t.Errorf("merge should shrink the DAG: %d -> %d", eqsBefore, eqsAfter)
	}
}

func TestRenderDOT(t *testing.T) {
	db := smallDB()
	d := expandProblemDept(t, db)
	marked := map[int]bool{d.Root.ID: true}
	out := d.RenderDOT(marked)
	for _, want := range []string{"digraph", "shape=box", "shape=ellipse", "(root)", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
