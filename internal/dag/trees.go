package dag

import "repro/internal/algebra"

// Trees enumerates concrete expression trees represented by an
// equivalence node, up to limit (0 = no limit). Operation choices that
// would revisit an equivalence node already on the current path are
// skipped (rule application can make the memo cyclic through identity
// rewrites; concrete trees are always acyclic).
func (d *DAG) Trees(e *EqNode, limit int) []algebra.Node {
	var out []algebra.Node
	d.trees(e, map[int]bool{}, limit, &out)
	return out
}

func (d *DAG) trees(e *EqNode, onPath map[int]bool, limit int, out *[]algebra.Node) {
	if limit > 0 && len(*out) >= limit {
		return
	}
	if e.IsLeaf() {
		*out = append(*out, e.Expr)
		return
	}
	if onPath[e.ID] {
		return
	}
	onPath[e.ID] = true
	defer delete(onPath, e.ID)
	for _, op := range e.Ops {
		childAlts := make([][]algebra.Node, len(op.Children))
		ok := true
		for i, c := range op.Children {
			var alts []algebra.Node
			d.trees(c, onPath, limit, &alts)
			if len(alts) == 0 {
				ok = false
				break
			}
			childAlts[i] = alts
		}
		if !ok {
			continue
		}
		// Cartesian product of child alternatives.
		idx := make([]int, len(childAlts))
		for {
			children := make([]algebra.Node, len(childAlts))
			for i := range childAlts {
				children[i] = childAlts[i][idx[i]]
			}
			*out = append(*out, op.Template.WithChildren(children))
			if limit > 0 && len(*out) >= limit {
				return
			}
			// Advance the product counter.
			k := len(idx) - 1
			for k >= 0 {
				idx[k]++
				if idx[k] < len(childAlts[k]) {
					break
				}
				idx[k] = 0
				k--
			}
			if k < 0 {
				break
			}
		}
	}
}

// FindEq locates an equivalence node whose representative label matches
// the canonical label of the given expression, or whose class contains an
// operation with the same signature over the same children. Returns nil
// when the expression is not represented.
func (d *DAG) FindEq(n algebra.Node) *EqNode {
	eq, err := d.lookup(n)
	if err != nil {
		return nil
	}
	return eq
}

// lookup is a non-mutating variant of incorporate: it resolves n to an
// existing equivalence node without adding anything.
func (d *DAG) lookup(n algebra.Node) (*EqNode, error) {
	if r, ok := n.(Ref); ok {
		return r.Eq, nil
	}
	if rel, ok := n.(*algebra.Rel); ok {
		if e, ok := d.byLabel[rel.Label()]; ok {
			return e, nil
		}
		return nil, errNotFound
	}
	children := n.Children()
	childEqs := make([]*EqNode, len(children))
	for i, c := range children {
		ce, err := d.lookup(c)
		if err != nil {
			return nil, err
		}
		childEqs[i] = ce
	}
	key := opKey(n.OpLabel(), childEqs)
	if op, ok := d.opIndex[key]; ok {
		return op.Parent, nil
	}
	return nil, errNotFound
}

var errNotFound = errNotFoundType{}

type errNotFoundType struct{}

func (errNotFoundType) Error() string { return "dag: expression not represented" }
