package dag

import (
	"fmt"
	"strings"
)

// RenderDOT emits the DAG in Graphviz DOT form: equivalence nodes as
// boxes (marked ones shaded), operation nodes as ellipses, edges from
// each equivalence node to its operation alternatives and from each
// operation to its child classes. marked may be nil.
func (d *DAG) RenderDOT(marked map[int]bool) string {
	var b strings.Builder
	b.WriteString("digraph expression_dag {\n")
	b.WriteString("  rankdir=BT;\n")
	b.WriteString("  node [fontsize=10];\n")
	for _, e := range d.eqs {
		attrs := `shape=box`
		label := e.String()
		if e.IsLeaf() {
			attrs = `shape=box, style=rounded`
		} else if marked != nil && marked[e.ID] {
			attrs = `shape=box, style=filled, fillcolor=lightgray`
		}
		if d.IsRoot(e) {
			label += " (root)"
		}
		fmt.Fprintf(&b, "  eq%d [%s, label=%q];\n", e.ID, attrs, label)
		for _, op := range e.Ops {
			fmt.Fprintf(&b, "  op%d [shape=ellipse, label=%q];\n", op.ID,
				fmt.Sprintf("E%d: %s", op.ID, op.OpLabel()))
			fmt.Fprintf(&b, "  op%d -> eq%d;\n", op.ID, e.ID)
			for _, c := range op.Children {
				fmt.Fprintf(&b, "  eq%d -> op%d;\n", c.ID, op.ID)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
