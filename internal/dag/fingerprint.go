package dag

import (
	"strings"

	"repro/internal/algebra"
)

// Fingerprint returns a structural fingerprint of an equivalence node:
// the canonical label of its representative tree with Ref leaves
// expanded recursively down to base relations. Unlike canonicalLabel —
// which embeds class IDs and is only stable within one DAG instance —
// the fingerprint is a pure function of the expression structure, so two
// classes (even across DAG instances over the same catalog) that
// represent the same subexpression collide. The maintenance runtime
// keys its per-window subplan memo on it: any rep-tree subexpression
// posed by more than one query along an update track maps to one memo
// slot and is evaluated once per window.
//
// Fingerprints are memoized per class (including every class visited
// along the way) and the cache is cleared whenever the DAG mutates,
// alongside the base-relation cache. Not safe for concurrent first use;
// compute fingerprints during (single-threaded) plan compilation, after
// which reads hit the memo.
func (d *DAG) Fingerprint(e *EqNode) string {
	if fp, ok := d.fps[e.ID]; ok {
		return fp
	}
	var fp string
	if e.IsLeaf() {
		fp = e.Expr.Label()
	} else {
		var b strings.Builder
		d.appendNodeFingerprint(&b, e.Expr)
		fp = b.String()
	}
	if d.fps == nil {
		d.fps = map[int]string{}
	}
	d.fps[e.ID] = fp
	return fp
}

// appendNodeFingerprint renders a template tree, recursing through Ref
// leaves into their classes' (memoized) fingerprints.
func (d *DAG) appendNodeFingerprint(b *strings.Builder, n algebra.Node) {
	if r, ok := n.(Ref); ok {
		b.WriteString(d.Fingerprint(r.Eq))
		return
	}
	children := n.Children()
	if len(children) == 0 {
		b.WriteString(n.Label())
		return
	}
	b.WriteString(n.OpLabel())
	b.WriteByte('(')
	for i, c := range children {
		if i > 0 {
			b.WriteByte(',')
		}
		d.appendNodeFingerprint(b, c)
	}
	b.WriteByte(')')
}
