package dag

import (
	"fmt"
	"sort"
	"strings"
)

// ArticulationEqs returns the equivalence nodes that are articulation
// nodes of the DAG viewed as an undirected graph over equivalence and
// operation nodes (the paper's Definition 4.1). At these nodes the
// Shielding Principle (Theorem 4.1) permits local optimization.
//
// The root and leaves are excluded: the root trivially shields nothing
// above it, and leaves are always materialized.
func (d *DAG) ArticulationEqs() []*EqNode {
	// Build an undirected adjacency over vertices: eq nodes get even
	// handles (2*eqIdx), op nodes odd handles via a side table.
	type vertex struct {
		eq *EqNode
		op *OpNode
	}
	var verts []vertex
	index := map[interface{}]int{}
	addV := func(e *EqNode, o *OpNode) int {
		var key interface{}
		if e != nil {
			key = e
		} else {
			key = o
		}
		if i, ok := index[key]; ok {
			return i
		}
		i := len(verts)
		verts = append(verts, vertex{eq: e, op: o})
		index[key] = i
		return i
	}
	adj := map[int][]int{}
	connect := func(a, b int) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for _, e := range d.eqs {
		ei := addV(e, nil)
		for _, op := range e.Ops {
			oi := addV(nil, op)
			connect(ei, oi)
			for _, c := range op.Children {
				connect(oi, addV(c, nil))
			}
		}
	}
	if len(verts) == 0 {
		return nil
	}
	// Iterative Tarjan articulation points.
	disc := make([]int, len(verts))
	low := make([]int, len(verts))
	parent := make([]int, len(verts))
	isArt := make([]bool, len(verts))
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	timer := 0
	type frame struct {
		v, childIdx, childCount int
	}
	for start := range verts {
		if disc[start] != -1 {
			continue
		}
		stack := []frame{{v: start}}
		disc[start] = timer
		low[start] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.childIdx < len(adj[f.v]) {
				u := adj[f.v][f.childIdx]
				f.childIdx++
				if disc[u] == -1 {
					parent[u] = f.v
					f.childCount++
					disc[u] = timer
					low[u] = timer
					timer++
					stack = append(stack, frame{v: u})
				} else if u != parent[f.v] {
					if disc[u] < low[f.v] {
						low[f.v] = disc[u]
					}
				}
			} else {
				stack = stack[:len(stack)-1]
				if p := parent[f.v]; p != -1 {
					if low[f.v] < low[p] {
						low[p] = low[f.v]
					}
					if parent[p] != -1 && low[f.v] >= disc[p] {
						isArt[p] = true
					}
				}
				if parent[f.v] == -1 && f.childCount > 1 {
					isArt[f.v] = true
				}
			}
		}
	}
	var out []*EqNode
	for i, v := range verts {
		if isArt[i] && v.eq != nil && !v.eq.IsLeaf() && v.eq != d.Root {
			out = append(out, v.eq)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Descendants returns every equivalence node reachable below e
// (including e itself).
func (d *DAG) Descendants(e *EqNode) []*EqNode {
	seen := map[int]bool{}
	var out []*EqNode
	var walk func(*EqNode)
	walk = func(n *EqNode) {
		if seen[n.ID] {
			return
		}
		seen[n.ID] = true
		out = append(out, n)
		for _, op := range n.Ops {
			for _, c := range op.Children {
				walk(c)
			}
		}
	}
	walk(e)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Render draws the DAG in the style of the paper's Figure 2: one line per
// equivalence node listing its operation-node alternatives.
func (d *DAG) Render() string {
	var b strings.Builder
	for _, e := range d.eqs {
		if e.IsLeaf() {
			fmt.Fprintf(&b, "%s  [base relation]\n", e)
			continue
		}
		marker := " "
		if e == d.Root {
			marker = "*"
		}
		fmt.Fprintf(&b, "%s%s:\n", marker, e)
		for _, op := range e.Ops {
			fmt.Fprintf(&b, "    %s\n", op)
		}
	}
	return b.String()
}
