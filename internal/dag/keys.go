package dag

import "repro/internal/algebra"

// KeyedOn reports whether cols contain a candidate key of the equivalence
// node's result. Exact key knowledge exists for base relations;
// selections and duplicate elimination preserve keys. (Used by the
// aggregate-pushdown rule and by the key-based query elimination of the
// paper's Section 3.6, where Q3d is free because DName is a key of Dept.)
func (d *DAG) KeyedOn(e *EqNode, cols []string) bool {
	return d.keyedOn(e, cols, map[int]bool{})
}

func (d *DAG) keyedOn(e *EqNode, cols []string, seen map[int]bool) bool {
	if seen[e.ID] {
		return false
	}
	seen[e.ID] = true
	if e.IsLeaf() {
		if rel, ok := e.Expr.(*algebra.Rel); ok {
			return rel.Def.HasKey(cols)
		}
		return false
	}
	for _, op := range e.Ops {
		switch op.Kind() {
		case algebra.KindSelect, algebra.KindDistinct:
			if d.keyedOn(op.Children[0], cols, seen) {
				return true
			}
		case algebra.KindAggregate:
			// The group-by columns are a key of the aggregate output.
			agg := op.Template.(*algebra.Aggregate)
			set := map[string]bool{}
			for _, c := range cols {
				set[c] = true
			}
			all := true
			for _, g := range agg.GroupBy {
				if !set[g] {
					all = false
					break
				}
			}
			if all && len(agg.GroupBy) > 0 {
				return true
			}
		}
	}
	return false
}

// ColEquivOf builds the column-equality closure of an equivalence node's
// representative expression.
func (d *DAG) ColEquivOf(e *EqNode) *algebra.ColEquiv {
	u := algebra.NewColEquiv()
	u.Collect(d.RepTree(e))
	return u
}
