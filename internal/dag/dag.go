// Package dag implements the expression DAG (memo) of rule-based
// optimizers like Volcano, as used by the paper (Section 2.1): a
// bipartite directed acyclic graph of equivalence nodes (algebraically
// equivalent result sets) and operation nodes (one operator over child
// equivalence nodes). The DAG is grown from an initial expression tree by
// equivalence rules and compactly represents the space of equivalent
// expression trees; its non-leaf equivalence nodes are the candidate
// views of the paper's Definition 3.1.
//
// Equivalence here is strict: every operation node under an equivalence
// node produces exactly the same schema (column names, order and types)
// and the same bag of tuples. Rules that would change column order or
// naming (join reordering, aggregate pushdown) wrap their result in a
// pure projection to re-align it; the projection is a real operation node
// with zero I/O cost.
package dag

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/algebra"
	"repro/internal/catalog"
)

// EqNode is an equivalence node: a class of algebraically equivalent
// expressions. Leaf equivalence nodes correspond to base relations.
type EqNode struct {
	// ID is stable for the lifetime of the DAG; after a merge the
	// surviving node keeps its ID.
	ID int
	// Expr is the representative expression (the first tree form seen);
	// its schema is the canonical schema of the class.
	Expr algebra.Node
	// Ops are the alternative operation nodes computing this class
	// (empty for leaves).
	Ops []*OpNode
	// Parents are the operation nodes that consume this class.
	Parents []*OpNode
	// BaseRel is the relation name for leaf nodes ("" otherwise).
	BaseRel string
}

// IsLeaf reports whether the node is a base relation.
func (e *EqNode) IsLeaf() bool { return e.BaseRel != "" }

// Schema returns the canonical output schema of the class.
func (e *EqNode) Schema() *catalog.Schema { return e.Expr.Schema() }

// String renders the node compactly.
func (e *EqNode) String() string {
	if e.IsLeaf() {
		return fmt.Sprintf("N%d(%s)", e.ID, e.BaseRel)
	}
	return fmt.Sprintf("N%d", e.ID)
}

// OpNode is an operation node: one operator applied to child equivalence
// nodes. Template is the algebra operator with Ref leaves standing for
// the children; Tree() substitutes concrete child trees.
type OpNode struct {
	ID       int
	Template algebra.Node
	Children []*EqNode
	Parent   *EqNode
}

// Kind returns the operator kind.
func (o *OpNode) Kind() algebra.Kind { return o.Template.Kind() }

// OpLabel returns the operator signature (no children).
func (o *OpNode) OpLabel() string { return o.Template.OpLabel() }

// String renders the op with its child equivalence nodes.
func (o *OpNode) String() string {
	kids := make([]string, len(o.Children))
	for i, c := range o.Children {
		kids[i] = c.String()
	}
	return fmt.Sprintf("E%d:%s(%s)", o.ID, o.OpLabel(), strings.Join(kids, ","))
}

// Ref is an algebra leaf standing for an equivalence node inside an
// operation template or a rule-produced tree.
type Ref struct{ Eq *EqNode }

// Kind implements algebra.Node (Refs masquerade as base relations).
func (r Ref) Kind() algebra.Kind { return algebra.KindRel }

// Schema implements algebra.Node.
func (r Ref) Schema() *catalog.Schema { return r.Eq.Schema() }

// Children implements algebra.Node.
func (r Ref) Children() []algebra.Node { return nil }

// WithChildren implements algebra.Node.
func (r Ref) WithChildren(children []algebra.Node) algebra.Node {
	if len(children) != 0 {
		panic("dag: Ref takes no children")
	}
	return r
}

// Label implements algebra.Node.
func (r Ref) Label() string { return fmt.Sprintf("@%d", r.Eq.ID) }

// OpLabel implements algebra.Node.
func (r Ref) OpLabel() string { return r.Label() }

// DAG is the memo: equivalence nodes, operation nodes and the indexes
// needed to deduplicate and merge them.
type DAG struct {
	// Root is the equivalence node of the (primary) view being
	// maintained.
	Root *EqNode
	// Roots lists every top-level view when the DAG is multi-rooted
	// (Section 6: "the expression DAG will have to include multiple view
	// definitions, and may therefore have multiple roots, and every view
	// that must be materialized will be marked"). For a single view it
	// is [Root].
	Roots []*EqNode

	eqs      []*EqNode          // all live eq nodes, creation order
	byLabel  map[string]*EqNode // canonical expression label → eq
	opIndex  map[string]*OpNode // op signature + child IDs → op
	nextEq   int
	nextOp   int
	baseRels map[int][]string // eq ID → sorted base relations beneath
	fps      map[int]string   // eq ID → structural fingerprint (see Fingerprint)
}

// New returns an empty DAG.
func New() *DAG {
	return &DAG{
		byLabel:  map[string]*EqNode{},
		opIndex:  map[string]*OpNode{},
		baseRels: map[int][]string{},
		fps:      map[int]string{},
	}
}

// Eqs returns all live equivalence nodes in creation order.
func (d *DAG) Eqs() []*EqNode {
	out := make([]*EqNode, len(d.eqs))
	copy(out, d.eqs)
	return out
}

// NonLeafEqs returns the candidate view nodes: every non-leaf equivalence
// node (the paper's E_V).
func (d *DAG) NonLeafEqs() []*EqNode {
	var out []*EqNode
	for _, e := range d.eqs {
		if !e.IsLeaf() {
			out = append(out, e)
		}
	}
	return out
}

// Ops returns all live operation nodes in creation order.
func (d *DAG) Ops() []*OpNode {
	var out []*OpNode
	for _, e := range d.eqs {
		out = append(out, e.Ops...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FromTree builds the initial DAG from an expression tree and sets Root.
func FromTree(n algebra.Node) (*DAG, error) {
	return FromTrees(n)
}

// FromTrees builds a (possibly multi-rooted) DAG from one or more view
// expressions sharing one memo; common subexpressions across views are
// shared. The first tree's class becomes Root.
func FromTrees(views ...algebra.Node) (*DAG, error) {
	if len(views) == 0 {
		return nil, fmt.Errorf("dag: no views")
	}
	d := New()
	for _, v := range views {
		eq, err := d.Incorporate(v, nil)
		if err != nil {
			return nil, err
		}
		if !containsEq(d.Roots, eq) {
			d.Roots = append(d.Roots, eq)
		}
	}
	d.Root = d.Roots[0]
	return d, nil
}

// IsRoot reports whether e is one of the DAG's top-level views.
func (d *DAG) IsRoot(e *EqNode) bool { return containsEq(d.Roots, e) }

func containsEq(nodes []*EqNode, e *EqNode) bool {
	for _, n := range nodes {
		if n == e {
			return true
		}
	}
	return false
}

// opKey builds the congruence key of an operator over child classes.
func opKey(opLabel string, children []*EqNode) string {
	var b strings.Builder
	b.WriteString(opLabel)
	b.WriteByte('(')
	for i, c := range children {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c.ID)
	}
	b.WriteByte(')')
	return b.String()
}

// canonicalLabel renders the expression label of a tree whose Ref leaves
// are replaced by class IDs, so that structurally identical trees over
// the same classes collide.
func (d *DAG) canonicalLabel(n algebra.Node) string {
	if r, ok := n.(Ref); ok {
		return fmt.Sprintf("@%d", r.Eq.ID)
	}
	children := n.Children()
	if len(children) == 0 {
		return n.Label()
	}
	parts := make([]string, len(children))
	for i, c := range children {
		parts[i] = d.canonicalLabel(c)
	}
	return n.OpLabel() + "(" + strings.Join(parts, ",") + ")"
}

// Incorporate adds an expression tree (possibly containing Ref leaves)
// to the DAG and returns its equivalence node. When under is non-nil the
// tree is registered as an alternative of that class, merging classes if
// the tree already belongs to a different one.
func (d *DAG) Incorporate(n algebra.Node, under *EqNode) (*EqNode, error) {
	eq, err := d.incorporate(n)
	if err != nil {
		return nil, err
	}
	if under != nil && eq != under {
		eq = d.merge(under, eq)
	}
	return eq, nil
}

func (d *DAG) incorporate(n algebra.Node) (*EqNode, error) {
	if r, ok := n.(Ref); ok {
		return r.Eq, nil
	}
	if rel, ok := n.(*algebra.Rel); ok {
		label := rel.Label()
		if e, ok := d.byLabel[label]; ok {
			return e, nil
		}
		e := d.newEq(rel)
		e.BaseRel = rel.Def.Name
		d.byLabel[label] = e
		return e, nil
	}
	children := n.Children()
	childEqs := make([]*EqNode, len(children))
	for i, c := range children {
		ce, err := d.incorporate(c)
		if err != nil {
			return nil, err
		}
		childEqs[i] = ce
	}
	// Template: the operator over Ref leaves.
	refs := make([]algebra.Node, len(childEqs))
	for i, ce := range childEqs {
		refs[i] = Ref{Eq: ce}
	}
	template := n.WithChildren(refs)
	key := opKey(template.OpLabel(), childEqs)
	if op, ok := d.opIndex[key]; ok {
		return op.Parent, nil
	}
	label := d.canonicalLabel(template)
	eq, ok := d.byLabel[label]
	if !ok {
		rep := template // representative keeps Ref children; schema works through Ref
		eq = d.newEq(rep)
		d.byLabel[label] = eq
	}
	op := &OpNode{ID: d.nextOp, Template: template, Children: childEqs, Parent: eq}
	d.nextOp++
	eq.Ops = append(eq.Ops, op)
	for _, ce := range childEqs {
		ce.Parents = append(ce.Parents, op)
	}
	d.opIndex[key] = op
	d.invalidate()
	return eq, nil
}

func (d *DAG) newEq(rep algebra.Node) *EqNode {
	e := &EqNode{ID: d.nextEq, Expr: rep}
	d.nextEq++
	d.eqs = append(d.eqs, e)
	d.invalidate()
	return e
}

// merge unifies two equivalence classes and returns the survivor,
// cascading congruence merges (two ops that become identical force their
// parents to merge too).
func (d *DAG) merge(a, b *EqNode) *EqNode {
	if a == b {
		return a
	}
	// Keep the older node (smaller ID) as survivor — typically the one
	// closer to the original expression.
	if b.ID < a.ID {
		a, b = b, a
	}
	// Move b's ops under a.
	for _, op := range b.Ops {
		op.Parent = a
	}
	a.Ops = append(a.Ops, b.Ops...)
	b.Ops = nil
	a.Parents = append(a.Parents, b.Parents...)
	b.Parents = nil
	// Remove b from the node list and label index.
	for i, e := range d.eqs {
		if e == b {
			d.eqs = append(d.eqs[:i], d.eqs[i+1:]...)
			break
		}
	}
	for label, e := range d.byLabel {
		if e == b {
			d.byLabel[label] = a
		}
	}
	if d.Root == b {
		d.Root = a
	}
	for i, r := range d.Roots {
		if r == b {
			d.Roots[i] = a
		}
	}
	d.Roots = dedupeEqs(d.Roots)
	// Rewrite all ops that referenced b as a child, rebuilding the op
	// index; collisions trigger cascaded merges.
	type collision struct{ x, y *EqNode }
	var cascades []collision
	newIndex := make(map[string]*OpNode, len(d.opIndex))
	for _, e := range d.eqs {
		for _, op := range e.Ops {
			changed := false
			for i, c := range op.Children {
				if c == b {
					op.Children[i] = a
					changed = true
				}
			}
			if changed {
				refs := make([]algebra.Node, len(op.Children))
				for i, ce := range op.Children {
					refs[i] = Ref{Eq: ce}
				}
				op.Template = op.Template.WithChildren(refs)
			}
			key := opKey(op.Template.OpLabel(), op.Children)
			if prev, ok := newIndex[key]; ok {
				if prev.Parent != op.Parent {
					cascades = append(cascades, collision{prev.Parent, op.Parent})
				}
				// Keep the first op; drop the duplicate from its parent.
				dropOp(op)
				continue
			}
			newIndex[key] = op
		}
	}
	d.opIndex = newIndex
	// Deduplicate parent lists.
	a.Parents = dedupeOps(a.Parents)
	d.invalidate()
	for _, c := range cascades {
		d.merge(c.x, c.y)
	}
	return a
}

// dropOp removes op from its parent's op list and from its children's
// parent lists.
func dropOp(op *OpNode) {
	p := op.Parent
	for i, o := range p.Ops {
		if o == op {
			p.Ops = append(p.Ops[:i], p.Ops[i+1:]...)
			break
		}
	}
	for _, c := range op.Children {
		for i, o := range c.Parents {
			if o == op {
				c.Parents = append(c.Parents[:i], c.Parents[i+1:]...)
				break
			}
		}
	}
}

func dedupeEqs(eqs []*EqNode) []*EqNode {
	seen := map[*EqNode]bool{}
	out := eqs[:0]
	for _, e := range eqs {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}

func dedupeOps(ops []*OpNode) []*OpNode {
	seen := map[*OpNode]bool{}
	out := ops[:0]
	for _, o := range ops {
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out
}

func (d *DAG) invalidate() {
	d.baseRels = map[int][]string{}
	d.fps = map[int]string{}
}

// BaseRelsOf returns the sorted base relation names reachable below an
// equivalence node.
func (d *DAG) BaseRelsOf(e *EqNode) []string {
	if cached, ok := d.baseRels[e.ID]; ok {
		return cached
	}
	set := map[string]bool{}
	var walk func(*EqNode)
	visited := map[int]bool{}
	walk = func(n *EqNode) {
		if visited[n.ID] {
			return
		}
		visited[n.ID] = true
		if n.IsLeaf() {
			set[n.BaseRel] = true
			return
		}
		for _, op := range n.Ops {
			for _, c := range op.Children {
				walk(c)
			}
		}
	}
	walk(e)
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	d.baseRels[e.ID] = out
	return out
}

// Affected reports whether e's result can change when the given base
// relations are updated.
func (d *DAG) Affected(e *EqNode, updated []string) bool {
	rels := d.BaseRelsOf(e)
	for _, u := range updated {
		for _, r := range rels {
			if r == u {
				return true
			}
		}
	}
	return false
}

// RepTree returns a concrete expression tree for an equivalence node by
// recursively choosing each class's first operation node (the original
// construction tree). For leaves it returns the base relation scan.
func (d *DAG) RepTree(e *EqNode) algebra.Node {
	return d.treeOf(e, map[int]bool{})
}

func (d *DAG) treeOf(e *EqNode, onPath map[int]bool) algebra.Node {
	if e.IsLeaf() {
		return e.Expr
	}
	if onPath[e.ID] {
		panic(fmt.Sprintf("dag: cycle through %s", e))
	}
	onPath[e.ID] = true
	defer delete(onPath, e.ID)
	op := e.Ops[0]
	children := make([]algebra.Node, len(op.Children))
	for i, c := range op.Children {
		children[i] = d.treeOf(c, onPath)
	}
	return op.Template.WithChildren(children)
}

// TreeOfOp materializes the concrete tree of one operation node using
// each child's representative tree.
func (d *DAG) TreeOfOp(op *OpNode) algebra.Node {
	children := make([]algebra.Node, len(op.Children))
	for i, c := range op.Children {
		children[i] = d.treeOf(c, map[int]bool{})
	}
	return op.Template.WithChildren(children)
}

// Stats summarizes the DAG size.
func (d *DAG) Stats() (eqNodes, opNodes int) {
	for _, e := range d.eqs {
		eqNodes++
		opNodes += len(e.Ops)
	}
	return
}
