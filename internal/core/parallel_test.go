package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/paper"
	"repro/internal/rules"
)

// canonical renders a result into the byte-identical form the parallel
// search guarantees across every Parallelism and Seed.
func canonical(r *core.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "best=%s w=%.17g explored=%d pruned=%d trunc=%v\n",
		r.Best.Set.Key(), r.Best.Weighted, r.Explored, r.Pruned, r.Truncated)
	for _, ev := range r.All {
		fmt.Fprintf(&b, "%s %.17g\n", ev.Set.Key(), ev.Weighted)
	}
	return b.String()
}

// TestParallelMatchesExhaustiveRandom is the equivalence property: over
// random views and random weighted workloads, the parallel search at any
// worker count and any seed returns the exhaustive optimum, prices every
// kept set identically, keeps every minimum-cost set, and renders
// byte-identically across all (Parallelism, Seed) combinations.
func TestParallelMatchesExhaustiveRandom(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7000 + trial)))
			cfg := corpus.Config{
				Departments:  3 + rng.Intn(8),
				EmpsPerDept:  2 + rng.Intn(4),
				ADeptsEveryN: 2,
			}
			db := corpus.NewDatabase(cfg)
			view := corpus.RandomView(rng, db)
			d, err := dag.FromTree(view)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d.Expand(rules.Default(), 200); err != nil {
				t.Fatal(err)
			}
			cands := 0
			for _, e := range d.NonLeafEqs() {
				if !d.IsRoot(e) {
					cands++
				}
			}
			if cands > 10 {
				t.Skipf("lattice of 2^%d sets too large for the exhaustive oracle", cands)
			}
			types := corpus.RandomWorkload(rng)

			opt := core.New(d, cost.PageIO{}, types)
			exh, err := opt.Exhaustive()
			if err != nil {
				t.Fatal(err)
			}
			exhCost := map[string]float64{}
			for _, ev := range exh.All {
				exhCost[ev.Set.Key()] = ev.Weighted
			}

			var ref string
			for _, j := range []int{1, 2, 4, 8} {
				for _, seed := range []int64{0, 1, 42} {
					opt.Parallelism, opt.Seed = j, seed
					par, err := opt.Parallel()
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("j=%d seed=%d", j, seed)
					if par.Truncated {
						t.Fatalf("%s: unexpected truncation", label)
					}
					if got := canonical(par); ref == "" {
						ref = got
					} else if got != ref {
						t.Fatalf("%s: result differs from j=1 seed=0:\n%s\nvs\n%s", label, got, ref)
					}
					if par.Best.Set.Key() != exh.Best.Set.Key() || par.Best.Weighted != exh.Best.Weighted {
						t.Fatalf("%s: best %s=%g, exhaustive %s=%g (view %s)",
							label, par.Best.Set.Key(), par.Best.Weighted,
							exh.Best.Set.Key(), exh.Best.Weighted, view.Label())
					}
					if par.Explored+par.Pruned != exh.Explored {
						t.Fatalf("%s: explored %d + pruned %d != lattice %d",
							label, par.Explored, par.Pruned, exh.Explored)
					}
					// Every kept set is priced exactly as the oracle priced it,
					// and every optimum survives the pruning.
					for _, ev := range par.All {
						w, ok := exhCost[ev.Set.Key()]
						if !ok || w != ev.Weighted {
							t.Fatalf("%s: kept set %s=%g not in exhaustive log (want %g)",
								label, ev.Set.Key(), ev.Weighted, w)
						}
					}
					kept := map[string]bool{}
					for _, ev := range par.All {
						kept[ev.Set.Key()] = true
					}
					for _, ev := range exh.All {
						if ev.Weighted == exh.Best.Weighted && !kept[ev.Set.Key()] {
							t.Fatalf("%s: optimum-cost set %s pruned", label, ev.Set.Key())
						}
					}
					// Both All slices share the same total order, so the
					// parallel log must be an order-preserving subsequence.
					i := 0
					for _, ev := range par.All {
						for i < len(exh.All) && exh.All[i].Set.Key() != ev.Set.Key() {
							i++
						}
						if i == len(exh.All) {
							t.Fatalf("%s: All is not a subsequence of the exhaustive All", label)
						}
						i++
					}
				}
			}
		})
	}
}

// TestParallelPaperScenarios runs the paper's own workloads through both
// search paths: the §3.6 ProblemDept tables fixture and the Figure 5
// articulation-node schema must agree with the exhaustive optimum.
func TestParallelPaperScenarios(t *testing.T) {
	f, err := paper.NewFixture(corpus.PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	exh, err := f.Optimum()
	if err != nil {
		t.Fatal(err)
	}
	opt := core.New(f.D, cost.PageIO{}, f.Types)
	par, err := opt.Parallel()
	if err != nil {
		t.Fatal(err)
	}
	if par.Best.Set.Key() != exh.Best.Set.Key() || par.Best.Weighted != exh.Best.Weighted {
		t.Fatalf("ProblemDept: parallel %s=%g, exhaustive %s=%g",
			par.Best.Set.Key(), par.Best.Weighted, exh.Best.Set.Key(), exh.Best.Weighted)
	}
	// The paper's per-transaction costs (Table 4's winning row) must come
	// out identically on the parallel path.
	for name, tc := range exh.Best.PerTxn {
		pc, ok := par.Best.PerTxn[name]
		if !ok || pc.Total() != tc.Total() {
			t.Fatalf("ProblemDept %s: parallel total %g, exhaustive %g", name, pc.Total(), tc.Total())
		}
	}

	fig5, err := paper.Figure5Optimizer(corpus.DefaultFigure5Config())
	if err != nil {
		t.Fatal(err)
	}
	exh5, err := fig5.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	fig5.Parallelism = 4
	par5, err := fig5.Parallel()
	if err != nil {
		t.Fatal(err)
	}
	if par5.Best.Set.Key() != exh5.Best.Set.Key() || par5.Best.Weighted != exh5.Best.Weighted {
		t.Fatalf("Figure5: parallel %s=%g, exhaustive %s=%g",
			par5.Best.Set.Key(), par5.Best.Weighted, exh5.Best.Set.Key(), exh5.Best.Weighted)
	}
	if par5.Pruned == 0 {
		t.Fatal("Figure5: expected the bound to prune at least one view set")
	}
	if hits, misses := fig5.Cost.CacheStats(); hits == 0 || misses == 0 {
		t.Fatalf("Figure5: implausible cache stats hits=%d misses=%d", hits, misses)
	}
}
