package core

import (
	"sort"

	"repro/internal/dag"
	"repro/internal/tracks"
)

// Shielded restricts the exhaustive search using the Shielding Principle
// (Theorem 4.1): at an equivalence node that is an articulation node of
// the DAG, the part of the optimal view set lying below the node can be
// found by optimizing the node's sub-DAG locally.
//
// Concretely, for each articulation node A (innermost first) it computes
// the local optimum of A's subproblem with A materialized (the case the
// theorem covers exactly) and keeps a small menu of candidate markings
// for A's strict descendants: the empty set, the local optimum including
// A, and the local optimum without A itself. The global search then runs
// over the free nodes (those not strictly below any articulation node)
// crossed with the menus; every assembled candidate is still priced
// globally, so the restriction affects only which sets are explored.
//
// When the optimum materializes every articulation node, Theorem 4.1
// guarantees Shielded finds the true optimum; the extra menu entries make
// it robust (and, on every scenario in this repository's test suite,
// exactly equal to Exhaustive) when it does not.
func (o *Optimizer) Shielded() (*Result, error) {
	arts := o.D.ArticulationEqs()
	if len(arts) == 0 {
		// Nothing shields (rule rewrites can bypass every interior node,
		// e.g. selection pushdown around an aggregate). Fall back to
		// exhaustive search while it is affordable, else to greedy — the
		// degradation path the paper's Section 5 prescribes.
		if len(o.candidates()) <= 12 {
			r, err := o.Exhaustive()
			if err != nil {
				return nil, err
			}
			r.Method = "shielded (no articulation nodes: exhaustive)"
			return r, nil
		}
		r := o.Greedy()
		r.Method = "shielded (no articulation nodes: greedy fallback)"
		return r, nil
	}
	res := &Result{Method: "shielded"}

	// Keep only outermost articulation nodes as boundaries; inner ones
	// are handled inside their region's local optimization.
	outer := outermost(o.D, arts)

	// Below: strict descendants of each outer articulation node.
	below := map[int]bool{}
	for _, a := range outer {
		for _, e := range o.D.Descendants(a) {
			if e != a && !e.IsLeaf() {
				below[e.ID] = true
			}
		}
	}
	var free []*dag.EqNode
	for _, e := range o.candidates() {
		if !below[e.ID] && !isIn(outer, e) {
			free = append(free, e)
		}
	}

	// Menu per articulation node.
	menus := make([][]menuEntry, len(outer))
	for i, a := range outer {
		local, err := o.localOptimum(a)
		if err != nil {
			return nil, err
		}
		res.Explored += local.Explored
		withA := local.Best.Set.IDs()
		withoutA := exclude(withA, a.ID)
		entries := []menuEntry{{ids: nil}, {ids: withA}}
		if len(withoutA) != len(withA) {
			entries = append(entries, menuEntry{ids: withoutA})
		}
		menus[i] = dedupeEntries(entries)
	}

	// Cross product: free-node subsets × menu choices.
	nFree := 1 << len(free)
	assemble := func(mask int, chosen []int) {
		vs := tracks.RootSet(o.D)
		for j, e := range free {
			if mask&(1<<j) != 0 {
				vs[e.ID] = true
			}
		}
		for _, id := range chosen {
			vs[id] = true
		}
		ev := o.evaluate(vs)
		res.Explored++
		res.All = append(res.All, ev)
	}
	var rec func(mask, i int, chosen []int)
	rec = func(mask, i int, chosen []int) {
		if i == len(menus) {
			assemble(mask, chosen)
			return
		}
		for _, entry := range menus[i] {
			rec(mask, i+1, append(chosen[:len(chosen):len(chosen)], entry.ids...))
		}
	}
	for mask := 0; mask < nFree; mask++ {
		rec(mask, 0, nil)
	}
	sortEvaluated(res.All)
	res.Best = res.All[0]
	return res, nil
}

// localOptimum optimizes the sub-DAG rooted at an articulation node as
// its own maintenance problem (the paper's D_N), with the node
// materialized.
func (o *Optimizer) localOptimum(a *dag.EqNode) (*Result, error) {
	sub := withRoot(o.D, a) // shares nodes; only the root differs
	subOpt := &Optimizer{
		D:       sub,
		Cost:    tracks.NewCosting(sub, o.Cost.Model),
		Types:   o.Types,
		MaxSets: o.MaxSets,
	}
	// Restrict candidates to descendants of a by marking others leaf-like
	// — handled by candidate filtering below.
	desc := map[int]bool{}
	for _, e := range o.D.Descendants(a) {
		desc[e.ID] = true
	}
	cands := []*dag.EqNode{}
	for _, e := range subOpt.candidates() {
		if desc[e.ID] {
			cands = append(cands, e)
		}
	}
	res := &Result{Method: "local"}
	if len(cands) > 12 {
		// Local subproblems beyond exhaustive reach fall back to greedy
		// hill-climbing; the assembled candidates are still priced
		// globally, so this only narrows the menu, never corrupts costs.
		return subOpt.Greedy(), nil
	}
	n := 1 << len(cands)
	for mask := 0; mask < n; mask++ {
		vs := tracks.RootSet(subOpt.D)
		for i, e := range cands {
			if mask&(1<<i) != 0 {
				vs[e.ID] = true
			}
		}
		res.All = append(res.All, subOpt.evaluate(vs))
	}
	res.Explored = len(res.All)
	sortEvaluated(res.All)
	res.Best = res.All[0]
	return res, nil
}

// withRoot returns a DAG view sharing all nodes but rooted at a.
func withRoot(d *dag.DAG, a *dag.EqNode) *dag.DAG {
	nd := *d
	nd.Root = a
	nd.Roots = []*dag.EqNode{a}
	return &nd
}

func outermost(d *dag.DAG, arts []*dag.EqNode) []*dag.EqNode {
	var out []*dag.EqNode
	for _, a := range arts {
		inner := false
		for _, b := range arts {
			if a == b {
				continue
			}
			for _, e := range d.Descendants(b) {
				if e == a {
					inner = true
				}
			}
		}
		if !inner {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func isIn(nodes []*dag.EqNode, e *dag.EqNode) bool {
	for _, n := range nodes {
		if n == e {
			return true
		}
	}
	return false
}

func exclude(ids []int, id int) []int {
	out := make([]int, 0, len(ids))
	for _, x := range ids {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}

// menuEntry is one candidate marking of an articulation node's region.
type menuEntry struct{ ids []int }

func dedupeEntries(entries []menuEntry) []menuEntry {
	seen := map[string]bool{}
	var out []menuEntry
	for _, e := range entries {
		k := keyOfIDs(e.ids)
		if !seen[k] {
			seen[k] = true
			out = append(out, e)
		}
	}
	return out
}

func keyOfIDs(ids []int) string {
	s := append([]int{}, ids...)
	sort.Ints(s)
	b := make([]byte, 0, len(s)*3)
	for _, x := range s {
		b = append(b, byte(x), byte(x>>8), ',')
	}
	return string(b)
}
