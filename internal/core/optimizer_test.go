package core_test

import (
	"math"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/rules"
	"repro/internal/txn"
)

func problemDeptOptimizer(t *testing.T) (*corpus.Database, *dag.DAG, *core.Optimizer) {
	t.Helper()
	db := corpus.NewDatabase(corpus.PaperConfig())
	d, err := dag.FromTree(db.ProblemDept())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Expand(rules.Default(), 200); err != nil {
		t.Fatal(err)
	}
	return db, d, core.New(d, cost.PageIO{}, txn.PaperTypes())
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

// TestExhaustiveChoosesSumOfSals is the paper's bottom line for Example
// 1.1: Algorithm OptimalViewSet must pick {N3} (the SumOfSals aggregate)
// as the additional view, at an average of 3.5 page I/Os per transaction.
func TestExhaustiveChoosesSumOfSals(t *testing.T) {
	db, d, opt := problemDeptOptimizer(t)
	res, err := opt.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	n3 := d.FindEq(db.SumOfSals())
	views := res.AdditionalViews(d)
	if len(views) != 1 || views[0] != n3 {
		t.Fatalf("chosen additional views = %v, want exactly the SumOfSals node %s (cost %g)",
			views, n3, res.Best.Weighted)
	}
	if !approx(res.Best.Weighted, 3.5) {
		t.Errorf("optimal weighted cost = %g, want 3.5", res.Best.Weighted)
	}
	// 4 candidate non-root views -> 16 sets explored.
	if res.Explored != 16 {
		t.Errorf("explored = %d, want 16", res.Explored)
	}
	// The full ranking includes the empty set at 12.
	foundEmpty := false
	for _, ev := range res.All {
		if len(ev.Set) == 1 {
			foundEmpty = true
			if !approx(ev.Weighted, 12) {
				t.Errorf("empty set cost = %g, want 12", ev.Weighted)
			}
		}
	}
	if !foundEmpty {
		t.Error("empty view set missing from ranking")
	}
}

// TestGreedyFindsOptimumOnPaperExample: greedy hill-climbing reaches
// {N3} here (a single addition already improves).
func TestGreedyFindsOptimumOnPaperExample(t *testing.T) {
	db, d, opt := problemDeptOptimizer(t)
	res := opt.Greedy()
	n3 := d.FindEq(db.SumOfSals())
	views := res.AdditionalViews(d)
	if len(views) != 1 || views[0] != n3 {
		t.Fatalf("greedy chose %v, want {SumOfSals}", views)
	}
	if !approx(res.Best.Weighted, 3.5) {
		t.Errorf("greedy cost = %g, want 3.5", res.Best.Weighted)
	}
	exh, _ := opt.Exhaustive()
	if res.Explored >= exh.Explored {
		t.Errorf("greedy explored %d sets, expected fewer than exhaustive's %d",
			res.Explored, exh.Explored)
	}
}

// TestSingleTreeHeuristic: restricting to one expression tree still finds
// a good set on the paper example (the maintenance-optimal tree contains
// N3) or degrades gracefully; here the query-optimal tree for the
// full-size instance is the aggregate-over-join tree, so the heuristic
// explores fewer sets.
func TestSingleTreeHeuristic(t *testing.T) {
	_, _, opt := problemDeptOptimizer(t)
	res, err := opt.SingleTree()
	if err != nil {
		t.Fatal(err)
	}
	exh, _ := opt.Exhaustive()
	if res.Explored >= exh.Explored {
		t.Errorf("single-tree explored %d, exhaustive %d", res.Explored, exh.Explored)
	}
	if res.Best.Weighted < exh.Best.Weighted-1e-9 {
		t.Errorf("heuristic cannot beat exhaustive: %g < %g", res.Best.Weighted, exh.Best.Weighted)
	}
}

// TestHeuristicMarking: the single-view-set heuristic marks parents of
// joins/aggregations and keeps the marking only if it beats the empty
// set; on the paper example it must not be worse than doing nothing.
func TestHeuristicMarking(t *testing.T) {
	_, _, opt := problemDeptOptimizer(t)
	res := opt.HeuristicMarking()
	if res.Explored != 2 {
		t.Errorf("heuristic-marking explored %d, want 2", res.Explored)
	}
	empty := opt.Evaluate()
	if res.Best.Weighted > empty.Weighted+1e-9 {
		t.Errorf("heuristic marking (%g) must not lose to empty (%g)",
			res.Best.Weighted, empty.Weighted)
	}
}

// TestExample31ADeptsStatus reproduces Example 3.1/Figure 3: when only
// ADepts is updated, the optimizer materializes additional view(s) that
// (a) are not affected by ADepts updates (so they never need maintenance)
// and (b) make ΔADepts processing a single indexed lookup — total cost 2
// versus 13 with no additional views. "Note also that the expression tree
// used for processing updates on a view can be quite different from the
// expression tree used for evaluating the view."
func TestExample31ADeptsStatus(t *testing.T) {
	db := corpus.NewDatabase(corpus.PaperConfig())
	d, err := dag.FromTree(db.ADeptsStatus())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Expand(rules.Default(), 400); err != nil {
		t.Fatal(err)
	}
	adeptsOnly := []*txn.Type{{
		Name: ">ADepts", Weight: 1,
		Updates: []txn.RelUpdate{{Rel: "ADepts", Kind: txn.Insert, Size: 1}},
	}}
	opt := core.New(d, cost.PageIO{}, adeptsOnly)
	res, err := opt.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	empty := opt.Evaluate()
	if !approx(empty.Weighted, 13) {
		t.Errorf("no additional views: cost = %g, want 13", empty.Weighted)
	}
	if !approx(res.Best.Weighted, 2) {
		t.Errorf("optimal cost = %g, want 2 (single V1 lookup)", res.Best.Weighted)
	}
	views := res.AdditionalViews(d)
	if len(views) == 0 {
		t.Fatal("optimizer chose no additional views")
	}
	for _, v := range views {
		if d.Affected(v, []string{"ADepts"}) {
			t.Errorf("chosen view %s depends on ADepts and would need maintenance", v)
		}
	}
	// The chosen V1 must join Dept with employee-salary information —
	// i.e. depend on both Emp and Dept but not ADepts.
	rels := d.BaseRelsOf(views[0])
	if len(rels) != 2 || rels[0] != "Dept" || rels[1] != "Emp" {
		t.Errorf("V1 should be over {Dept, Emp}, got %v", rels)
	}
}

// TestFigure5ShieldingMatchesExhaustive: on the Figure 5 schema the
// aggregate's parent equivalence node is an articulation node; Shielded
// must find the exhaustive optimum while costing strictly fewer sets.
func TestFigure5ShieldingMatchesExhaustive(t *testing.T) {
	db := corpus.Figure5Database(corpus.DefaultFigure5Config())
	d, err := dag.FromTree(db.Figure5View(100_000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Expand(rules.Default(), 400); err != nil {
		t.Fatal(err)
	}
	arts := d.ArticulationEqs()
	foundAgg := false
	for _, a := range arts {
		for _, op := range a.Ops {
			if op.Kind() == algebra.KindAggregate {
				foundAgg = true
			}
		}
	}
	if !foundAgg {
		t.Fatalf("aggregate parent should be an articulation node; got %v\n%s", arts, d.Render())
	}
	types := []*txn.Type{
		{Name: ">T", Weight: 1, Updates: []txn.RelUpdate{{Rel: "T", Kind: txn.Modify, Size: 1, Cols: []string{"Price"}}}},
		{Name: "+S", Weight: 1, Updates: []txn.RelUpdate{{Rel: "S", Kind: txn.Insert, Size: 1}}},
		{Name: ">R", Weight: 0.5, Updates: []txn.RelUpdate{{Rel: "R", Kind: txn.Modify, Size: 1, Cols: []string{"RName"}}}},
	}
	opt := core.New(d, cost.PageIO{}, types)
	exh, err := opt.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	sh, err := opt.Shielded()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sh.Best.Weighted, exh.Best.Weighted) {
		t.Errorf("shielded best %g != exhaustive best %g (shielded set %s, exhaustive set %s)",
			sh.Best.Weighted, exh.Best.Weighted, sh.Best.Set.Key(), exh.Best.Set.Key())
	}
	if sh.Explored >= exh.Explored {
		t.Errorf("shielded explored %d sets, exhaustive %d — no reduction", sh.Explored, exh.Explored)
	}
	t.Logf("figure 5: exhaustive %d sets, shielded %d sets, optimum %g",
		exh.Explored, sh.Explored, exh.Best.Weighted)
}

// TestShieldedOnProblemDept: the ProblemDept DAG has articulation nodes
// too (or none); either way Shielded must return the same optimum.
func TestShieldedOnProblemDept(t *testing.T) {
	_, _, opt := problemDeptOptimizer(t)
	exh, err := opt.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	sh, err := opt.Shielded()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sh.Best.Weighted, exh.Best.Weighted) {
		t.Errorf("shielded %g != exhaustive %g", sh.Best.Weighted, exh.Best.Weighted)
	}
}

// TestExhaustiveLimit: MaxSets is a soft budget — an over-budget lattice
// yields the best incumbent found plus the Truncated flag rather than an
// error, and an in-budget search stays untruncated.
func TestExhaustiveLimit(t *testing.T) {
	_, _, opt := problemDeptOptimizer(t)
	full, err := opt.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated {
		t.Errorf("in-budget search reported Truncated")
	}

	opt.MaxSets = 8
	res, err := opt.Exhaustive()
	if err != nil {
		t.Fatalf("over-budget exhaustive should degrade, not error: %v", err)
	}
	if !res.Truncated {
		t.Error("over-budget search should report Truncated")
	}
	if res.Explored != 8 {
		t.Errorf("explored %d sets, budget was 8", res.Explored)
	}
	if res.Pruned != full.Explored-8 {
		t.Errorf("pruned = %d, want %d", res.Pruned, full.Explored-8)
	}
	// The incumbent must be the best of the first 8 masks: candidate
	// bits are enumerated in ascending mask order, so the incumbent can
	// only improve once the rest of the lattice is allowed in.
	if res.Best.Weighted < full.Best.Weighted {
		t.Errorf("truncated best %g beats full best %g", res.Best.Weighted, full.Best.Weighted)
	}
	// The parallel search prunes, so a budget of 8 can be enough to
	// finish the proof — in that case the result must be the optimum.
	opt.Parallelism = 4
	pres, err := opt.Parallel()
	if err != nil {
		t.Fatal(err)
	}
	if !pres.Truncated && pres.Best.Weighted != full.Best.Weighted {
		t.Errorf("untruncated parallel best %g != exhaustive best %g",
			pres.Best.Weighted, full.Best.Weighted)
	}
	// A budget of 2 cannot cover the deterministic core: the search must
	// degrade to an incumbent and say so.
	opt.MaxSets = 2
	pres, err = opt.Parallel()
	if err != nil {
		t.Fatal(err)
	}
	if !pres.Truncated {
		t.Error("over-budget parallel search should report Truncated")
	}
	if pres.Explored > 2 {
		t.Errorf("parallel explored %d sets, budget was 2", pres.Explored)
	}
	opt.MaxSets = 0
	opt.Parallelism = 0
}

// TestWeightSensitivity: with >Dept overwhelmingly frequent, {N3} remains
// optimal (2 vs 11); with >Emp dominant it also remains optimal (5 vs
// 13) — the paper notes {N3} wins "independent of the weighting".
func TestWeightSensitivity(t *testing.T) {
	db, d, _ := problemDeptOptimizer(t)
	n3 := d.FindEq(db.SumOfSals())
	for _, weights := range [][2]float64{{100, 1}, {1, 100}, {1, 1}} {
		types := []*txn.Type{
			{Name: ">Emp", Weight: weights[0], Updates: txn.PaperTypes()[0].Updates},
			{Name: ">Dept", Weight: weights[1], Updates: txn.PaperTypes()[1].Updates},
		}
		opt := core.New(d, cost.PageIO{}, types)
		res, err := opt.Exhaustive()
		if err != nil {
			t.Fatal(err)
		}
		views := res.AdditionalViews(d)
		if len(views) != 1 || views[0] != n3 {
			t.Errorf("weights %v: chose %v, want {N3}", weights, views)
		}
	}
}
