// Parallel branch-and-bound over the view-set lattice.
//
// The lattice of candidate subsets is partitioned into contiguous bitmask
// ranges by high-bit prefix; a worker pool claims chunks from a shared
// counter and runs a depth-first search inside each, pruning any partial
// assignment whose monotone lower bound — the sum of the cheapest
// weighted update-only charge each forced-in view can ever incur
// (tracks.Costing.WeightedUpdateLB on its singleton set) — strictly
// exceeds the shared atomic incumbent. Because delta flows do not depend
// on the view set, every superset of a partial set pays at least that
// bound, so pruning never discards the optimum.
//
// Determinism: a live incumbent makes the *set of sets evaluated* depend
// on timing, so the raw evaluation log cannot be reported. Instead each
// evaluated set carries the maximum lower bound seen on its path
// (pathMax ≤ its true cost, by soundness), and the result keeps exactly
// the sets with pathMax ≤ W*, the optimal weighted cost: those are
// evaluated under every possible timing (pruning is strict, and the
// incumbent never goes below W*), and every optimum is among them. The
// reported Best, All, Explored and Pruned are therefore byte-identical
// at any Parallelism and any Seed. Truncated (budget-expired) searches
// are the documented exception: which sets fit the budget is
// timing-dependent above one worker.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/tracks"
)

// Registry mirrors of search effort. Workers tally privately and fold
// once per run, so the DFS hot path carries no shared atomics beyond
// the incumbent it already has.
var (
	obsSearchRuns      = obs.C("core.search.runs")
	obsSearchNodes     = obs.C("core.search.nodes_expanded")
	obsSearchEvaluated = obs.C("core.search.evaluated")
	obsSearchPruned    = obs.C("core.search.bound_prunes")
)

// MethodParallel is the Result.Method reported by Parallel. It is a
// constant — deliberately not parameterized by worker count — so results
// compare byte-identical across parallelism levels.
const MethodParallel = "parallel-bnb"

// Parallel runs Algorithm OptimalViewSet as a parallel branch-and-bound
// search. It returns the same Best as Exhaustive (and the same All
// modulo sets provably more expensive than the optimum) while costing
// far fewer view sets, using Parallelism workers.
func (o *Optimizer) Parallel() (*Result, error) {
	sp := obs.Trace.Start("core.parallel", 0)
	defer sp.Finish()
	obsSearchRuns.Inc()
	cands := o.candidates()
	if len(cands) >= 63 {
		return nil, fmt.Errorf("core: %d candidate views overflow the enumeration bitmask; use Shielded or a heuristic", len(cands))
	}
	limit := o.MaxSets
	if limit <= 0 {
		limit = 1 << 20
	}
	workers := o.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	s := &parSearch{o: o, cands: cands, budget: int64(limit)}
	s.incumbent.Store(math.Float64bits(math.Inf(1)))
	// Per-candidate bound contributions: candLB[i] is the weighted
	// update-only charge candidate i incurs on its cheapest possible
	// propagation path (the roots-free singleton set's WeightedUpdateLB,
	// so only the candidate itself is ever charged). Flows are
	// view-set-independent and a full track's restriction below the
	// candidate is one of the singleton enumeration's assignments, so
	// any track of any superset charges the candidate at least candLB[i].
	// Summing over a partial set's members therefore lower-bounds the
	// cost of every superset, and the DFS bound becomes a running sum
	// with no per-mask track enumeration at all.
	s.candLB = make([]float64, len(cands))
	for i, e := range cands {
		vs := tracks.NewViewSet(e)
		if !o.Cost.CountRootUpdate {
			// Roots charge nothing here, so including them changes no
			// cost — but it makes the bundle key match the singleton
			// view sets the search evaluates later, sharing their track
			// enumeration. With CountRootUpdate the roots' own charge
			// would be double-counted across candidates; keep the pure
			// singleton then.
			vs = tracks.RootSet(o.D)
			vs[e.ID] = true
		}
		s.candLB[i] = o.Cost.WeightedUpdateLB(vs, o.Types)
	}

	// Chunk the lattice by the high prefixBits candidate bits: enough
	// chunks to keep every worker fed, few enough that per-chunk prefix
	// work stays negligible.
	prefixBits := 0
	for (1<<prefixBits) < 4*workers && prefixBits < len(cands) && prefixBits < 12 {
		prefixBits++
	}
	chunks := 1 << prefixBits
	order := rand.New(rand.NewSource(o.Seed)).Perm(chunks)

	var next atomic.Int64
	var wg sync.WaitGroup
	results := make([][]pathEval, workers)
	stats := make([]searchStats, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= chunks {
					return
				}
				s.chunk(order[i], prefixBits, &results[w], &stats[w])
			}
		}(w)
	}
	wg.Wait()
	for i := range stats {
		obsSearchNodes.Add(stats[i].nodes)
		obsSearchEvaluated.Add(stats[i].evaluated)
		obsSearchPruned.Add(stats[i].pruned)
	}

	res := &Result{Method: MethodParallel, Truncated: s.truncated.Load()}
	var evaluated []pathEval
	for _, r := range results {
		evaluated = append(evaluated, r...)
	}
	if len(evaluated) == 0 {
		// Budget too small for even one set: price the mandatory root
		// set so the caller always gets a usable incumbent.
		evaluated = append(evaluated, pathEval{ev: o.evaluate(tracks.RootSet(o.D))})
	}
	best := math.Inf(1)
	for _, pe := range evaluated {
		if pe.ev.Weighted < best {
			best = pe.ev.Weighted
		}
	}
	for _, pe := range evaluated {
		if res.Truncated || pe.pathMax <= best {
			res.All = append(res.All, pe.ev)
		}
	}
	res.Explored = len(res.All)
	res.Pruned = (1 << len(cands)) - res.Explored
	sortEvaluated(res.All)
	res.Best = res.All[0]
	return res, nil
}

// pathEval is one costed full view set plus the largest lower bound on
// the DFS path that reached it (the determinism filter key).
type pathEval struct {
	ev      Evaluated
	pathMax float64
}

// searchStats is one worker's private effort tally, folded into the
// registry when the search completes.
type searchStats struct {
	nodes     int64 // dfs nodes expanded (partial assignments visited)
	evaluated int64 // full view sets costed
	pruned    int64 // subtrees cut by the additive lower bound
}

// parSearch is the state shared by all workers of one Parallel call.
type parSearch struct {
	o     *Optimizer
	cands []*dag.EqNode
	// candLB[i] is candidate i's additive lower-bound contribution,
	// computed once before the workers start (read-only after that).
	candLB []float64
	// incumbent holds math.Float64bits of the best weighted cost seen.
	incumbent atomic.Uint64
	evals     atomic.Int64
	budget    int64
	truncated atomic.Bool
}

func (s *parSearch) bound() float64 {
	return math.Float64frombits(s.incumbent.Load())
}

func (s *parSearch) observe(w float64) {
	for {
		cur := s.incumbent.Load()
		if w >= math.Float64frombits(cur) {
			return
		}
		if s.incumbent.CompareAndSwap(cur, math.Float64bits(w)) {
			return
		}
	}
}

func (s *parSearch) exhausted() bool { return s.evals.Load() >= s.budget }

// setOf builds the view set of a (partial or full) candidate bitmask.
func (s *parSearch) setOf(mask uint64) tracks.ViewSet {
	vs := tracks.RootSet(s.o.D)
	for i, e := range s.cands {
		if mask&(1<<i) != 0 {
			vs[e.ID] = true
		}
	}
	return vs
}

// chunk walks one prefix assignment (the high prefixBits bits spelled by
// the chunk id) and then DFSes the remaining low bits. Bound checks along
// the prefix mirror the DFS 1-branch checks, so a whole chunk is skipped
// as soon as its forced views alone exceed the incumbent.
func (s *parSearch) chunk(c, prefixBits int, out *[]pathEval, st *searchStats) {
	n := len(s.cands)
	mask := uint64(0)
	lb := 0.0
	for k := 0; k < prefixBits; k++ {
		if c&(1<<k) == 0 {
			continue
		}
		mask |= 1 << (n - 1 - k)
		lb += s.candLB[n-1-k]
		if lb > s.bound() {
			st.pruned++
			return
		}
	}
	s.dfs(n-1-prefixBits, mask, lb, out, st)
}

// dfs assigns candidate bits from idx down to 0, 0-branch first. The
// 1-branch extends the additive lower bound (the 0-branch inherits it:
// the forced set is unchanged) and prunes strictly, keeping the incumbent
// a true upper bound on the optimum at all times. The bound only grows
// along a path, so a leaf's lb is also the maximum bound on its path —
// the determinism filter key.
func (s *parSearch) dfs(idx int, mask uint64, lb float64, out *[]pathEval, st *searchStats) {
	if s.exhausted() {
		// An unpruned subtree reached after the budget expired is work
		// the unbudgeted search would have done: genuine truncation.
		// (A search that finishes exactly at the budget never re-enters
		// dfs, so the flag is not a false positive.)
		s.truncated.Store(true)
		return
	}
	st.nodes++
	if idx < 0 {
		if s.evals.Add(1) > s.budget {
			s.truncated.Store(true)
			return
		}
		ev := s.o.evaluate(s.setOf(mask))
		s.observe(ev.Weighted)
		st.evaluated++
		*out = append(*out, pathEval{ev: ev, pathMax: lb})
		return
	}
	s.dfs(idx-1, mask, lb, out, st)
	lb2 := lb + s.candLB[idx]
	if lb2 > s.bound() {
		st.pruned++
		return
	}
	s.dfs(idx-1, mask|1<<idx, lb2, out, st)
}
