// Package core implements the paper's primary contribution: choosing the
// optimal set of additional views to materialize for the incremental
// maintenance of a given materialized view.
//
//   - Exhaustive is Algorithm OptimalViewSet (Figure 4): it enumerates
//     every view set (subset of non-leaf equivalence nodes containing the
//     root), prices each under every transaction type via update-track
//     enumeration, and returns the one with minimum weighted cost. It is
//     exact under any monotonic cost model (Theorem 3.1).
//   - Shielded exploits the Shielding Principle (Theorem 4.1): at
//     equivalence nodes that are articulation nodes of the DAG, local
//     optima can be combined, restricting the search-space explosion.
//   - SingleTree, HeuristicMarking and Greedy are the heuristics of
//     Section 5.
package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/tracks"
	"repro/internal/txn"
)

// Optimizer selects additional views to materialize.
type Optimizer struct {
	D     *dag.DAG
	Cost  *tracks.Costing
	Types []*txn.Type
	// MaxSets is a soft budget on exhaustive enumeration (0 = 1<<20).
	// When the lattice is larger, the search evaluates up to MaxSets
	// view sets and returns the best incumbent with Result.Truncated set
	// instead of erroring.
	MaxSets int
	// Parallelism is the worker count for Parallel (0 = GOMAXPROCS,
	// 1 = sequential). The result is byte-identical at every setting.
	Parallelism int
	// Seed deterministically shuffles the order parallel workers claim
	// search-space chunks. It perturbs timing only — the result is
	// byte-identical for every seed — so the equivalence tests use it to
	// shake out order dependence.
	Seed int64
}

// New builds an optimizer over the DAG for the workload under the model.
func New(d *dag.DAG, m cost.Model, types []*txn.Type) *Optimizer {
	return &Optimizer{D: d, Cost: tracks.NewCosting(d, m), Types: types}
}

// Evaluated is one costed view set.
type Evaluated struct {
	Set      tracks.ViewSet
	Weighted float64
	PerTxn   map[string]tracks.TrackCost
}

// Result reports an optimization outcome.
type Result struct {
	Method string
	Best   Evaluated
	// All lists every view set costed, sorted by weighted cost
	// (ascending). Heuristics list only what they explored.
	All []Evaluated
	// Explored counts view sets costed — the search-effort metric the
	// paper's Sections 4–5 are about reducing. For Parallel it counts
	// the deterministic core (sets no bound can exclude), so it is
	// identical at every parallelism level.
	Explored int
	// Pruned counts view sets excluded without full evaluation (the
	// lattice size minus Explored; zero for methods that do not prune).
	Pruned int
	// Truncated reports that the MaxSets budget expired before the
	// search was complete: Best is the best incumbent found, not a
	// proven optimum.
	Truncated bool
}

// AdditionalViews returns the chosen views beyond the roots, sorted by ID.
func (r *Result) AdditionalViews(d *dag.DAG) []*dag.EqNode {
	var out []*dag.EqNode
	for _, e := range d.NonLeafEqs() {
		if !d.IsRoot(e) && r.Best.Set[e.ID] {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// evaluate prices one view set.
func (o *Optimizer) evaluate(vs tracks.ViewSet) Evaluated {
	w, per := o.Cost.WeightedCost(vs, o.Types)
	return Evaluated{Set: vs, Weighted: w, PerTxn: per}
}

// candidates returns the non-root, non-leaf equivalence nodes.
func (o *Optimizer) candidates() []*dag.EqNode {
	var out []*dag.EqNode
	for _, e := range o.D.NonLeafEqs() {
		if !o.D.IsRoot(e) {
			out = append(out, e)
		}
	}
	return out
}

// Exhaustive runs Algorithm OptimalViewSet: every subset of E_V
// containing the root is costed and the minimum chosen. When the lattice
// exceeds the MaxSets budget, the first MaxSets sets (in bitmask order)
// are costed and the result carries Truncated instead of an error; only
// a candidate count too large for a 63-bit mask still errors.
func (o *Optimizer) Exhaustive() (*Result, error) {
	sp := obs.Trace.Start("core.exhaustive", 0)
	defer sp.Finish()
	obsSearchRuns.Inc()
	cands := o.candidates()
	if len(cands) >= 63 {
		return nil, fmt.Errorf("core: %d candidate views overflow the enumeration bitmask; use Shielded or a heuristic", len(cands))
	}
	limit := o.MaxSets
	if limit <= 0 {
		limit = 1 << 20
	}
	res := &Result{Method: "exhaustive"}
	n := uint64(1) << len(cands)
	if n > uint64(limit) {
		n = uint64(limit)
		res.Truncated = true
	}
	for mask := uint64(0); mask < n; mask++ {
		vs := tracks.RootSet(o.D)
		for i, e := range cands {
			if mask&(1<<i) != 0 {
				vs[e.ID] = true
			}
		}
		ev := o.evaluate(vs)
		res.All = append(res.All, ev)
	}
	res.Explored = len(res.All)
	res.Pruned = (1 << len(cands)) - res.Explored
	obsSearchNodes.Add(int64(res.Explored))
	obsSearchEvaluated.Add(int64(res.Explored))
	sortEvaluated(res.All)
	res.Best = res.All[0]
	return res, nil
}

func sortEvaluated(evs []Evaluated) {
	sort.Slice(evs, func(i, j int) bool { return lessEvaluated(evs[i], evs[j]) })
}

// lessEvaluated is the total order on costed view sets: weighted cost,
// then set size (less space first), then the numerically smallest member
// sequence — equivalently the lowest candidate bitmask among equal-size
// ties. Being total, it makes Best and the All ordering deterministic
// regardless of evaluation order, which the parallel search relies on.
func lessEvaluated(a, b Evaluated) bool {
	if a.Weighted != b.Weighted {
		return a.Weighted < b.Weighted
	}
	if len(a.Set) != len(b.Set) {
		return len(a.Set) < len(b.Set)
	}
	ai, bi := a.Set.IDs(), b.Set.IDs()
	for k := range ai {
		if ai[k] != bi[k] {
			return ai[k] < bi[k]
		}
	}
	return false
}

// Evaluate prices an explicitly chosen view set (must include the root;
// it is added if missing). Exposed for reports and the paper's tables.
func (o *Optimizer) Evaluate(views ...*dag.EqNode) Evaluated {
	vs := tracks.RootSet(o.D)
	for _, v := range views {
		vs[v.ID] = true
	}
	return o.evaluate(vs)
}

// Greedy is the approximate-costing heuristic of Section 5: starting from
// the empty additional set, repeatedly add the single view with the best
// cost improvement until no addition helps.
func (o *Optimizer) Greedy() *Result {
	res := &Result{Method: "greedy"}
	cands := o.candidates()
	current := tracks.RootSet(o.D)
	cur := o.evaluate(current)
	res.All = append(res.All, cur)
	res.Explored++
	for {
		bestGain := 0.0
		var bestSet tracks.ViewSet
		var bestEv Evaluated
		for _, e := range cands {
			if current[e.ID] {
				continue
			}
			trial := current.Clone()
			trial[e.ID] = true
			ev := o.evaluate(trial)
			res.Explored++
			res.All = append(res.All, ev)
			if gain := cur.Weighted - ev.Weighted; gain > bestGain {
				bestGain = gain
				bestSet = trial
				bestEv = ev
			}
		}
		if bestSet == nil {
			break
		}
		current, cur = bestSet, bestEv
	}
	sortEvaluated(res.All)
	res.Best = cur
	return res
}

// SingleTree is the first heuristic of Section 5: pick the expression
// tree with the lowest cost for evaluating V as a query, then optimize
// exhaustively over only that tree's equivalence nodes.
func (o *Optimizer) SingleTree() (*Result, error) {
	onTree := o.queryOptimalTreeNodes()
	var cands []*dag.EqNode
	for _, e := range o.candidates() {
		if onTree[e.ID] {
			cands = append(cands, e)
		}
	}
	res := &Result{Method: "single-tree"}
	if len(cands) >= 30 {
		return nil, fmt.Errorf("core: single-tree still has %d candidates", len(cands))
	}
	n := 1 << len(cands)
	for mask := 0; mask < n; mask++ {
		vs := tracks.RootSet(o.D)
		for i, e := range cands {
			if mask&(1<<i) != 0 {
				vs[e.ID] = true
			}
		}
		res.All = append(res.All, o.evaluate(vs))
	}
	res.Explored = len(res.All)
	sortEvaluated(res.All)
	res.Best = res.All[0]
	return res, nil
}

// queryOptimalTreeNodes marks the equivalence nodes on the cheapest
// evaluation tree of the root: per class, the op minimizing the summed
// full-evaluation cost of its children is chosen.
func (o *Optimizer) queryOptimalTreeNodes() map[int]bool {
	none := tracks.RootSet(o.D)
	onTree := map[int]bool{}
	var walk func(e *dag.EqNode)
	walk = func(e *dag.EqNode) {
		if e.IsLeaf() || onTree[e.ID] {
			return
		}
		onTree[e.ID] = true
		var best *dag.OpNode
		bestCost := math.Inf(1)
		for _, op := range e.Ops {
			var sum float64
			for _, ch := range op.Children {
				sum += o.Cost.EvalCost(ch, none)
			}
			if sum < bestCost {
				bestCost = sum
				best = op
			}
		}
		if best != nil {
			for _, ch := range best.Children {
				walk(ch)
			}
		}
	}
	walk(o.D.Root)
	return onTree
}

// HeuristicMarking is the single-view-set heuristic of Section 5: on the
// query-optimal tree, mark every equivalence node that is the parent of a
// join or grouping/aggregation operator or the child of a duplicate
// elimination, then keep that marking only if it beats materializing
// nothing.
func (o *Optimizer) HeuristicMarking() *Result {
	onTree := o.queryOptimalTreeNodes()
	vs := tracks.RootSet(o.D)
	for _, e := range o.candidates() {
		if !onTree[e.ID] {
			continue
		}
		mark := false
		for _, op := range e.Ops {
			if k := op.Kind(); k == algebra.KindJoin || k == algebra.KindAggregate {
				mark = true
			}
		}
		for _, p := range e.Parents {
			if p.Kind() == algebra.KindDistinct {
				mark = true
			}
		}
		if mark {
			vs[e.ID] = true
		}
	}
	marked := o.evaluate(vs)
	empty := o.evaluate(tracks.RootSet(o.D))
	res := &Result{Method: "heuristic-marking", Explored: 2, All: []Evaluated{marked, empty}}
	sortEvaluated(res.All)
	res.Best = res.All[0]
	return res
}
