package bytemap

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// refBag is the map-based reference model the open-addressed table is
// checked against.
type refBag map[string]int64

func checkAgainstRef(t *testing.T, m *Map[int64], ref refBag) {
	t.Helper()
	if m.Len() != len(ref) {
		t.Fatalf("Len = %d, reference has %d", m.Len(), len(ref))
	}
	for k, want := range ref {
		got, ok := m.Get([]byte(k))
		if !ok {
			t.Fatalf("key %q missing from open table", k)
		}
		if got != want {
			t.Fatalf("key %q = %d, want %d", k, got, want)
		}
	}
	seen := map[string]int64{}
	m.Range(func(k []byte, v *int64) bool {
		if _, dup := seen[string(k)]; dup {
			t.Fatalf("Range yielded key %q twice", k)
		}
		seen[string(k)] = *v
		return true
	})
	if len(seen) != len(ref) {
		t.Fatalf("Range yielded %d keys, want %d", len(seen), len(ref))
	}
	for k, v := range ref {
		if seen[k] != v {
			t.Fatalf("Range key %q = %d, want %d", k, seen[k], v)
		}
	}
}

// TestDifferentialRandomWorkload drives the open table and a Go map
// through identical random insert/overwrite/delete/lookup/reset streams
// and demands identical visible state throughout, across several
// key-size regimes so growth and rehash boundaries are crossed many
// times.
func TestDifferentialRandomWorkload(t *testing.T) {
	for _, cfg := range []struct {
		name    string
		keys    int // size of the key universe
		ops     int
		maxKLen int
	}{
		{"small-universe", 13, 4000, 6},      // constant churn, heavy delete reuse
		{"growth", 5000, 20000, 12},          // crosses many growth boundaries
		{"long-keys", 300, 6000, 200},        // multi-block-sized keys
		{"singleton", 1, 500, 3},             // degenerate single-key
		{"empty-keys", 50, 3000, 0},          // zero-length keys allowed
	} {
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xB17E))
			universe := make([][]byte, cfg.keys)
			for i := range universe {
				k := make([]byte, rng.Intn(cfg.maxKLen+1))
				rng.Read(k)
				universe[i] = k
			}
			var m Map[int64]
			ref := refBag{}
			for op := 0; op < cfg.ops; op++ {
				k := universe[rng.Intn(len(universe))]
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // insert/overwrite
					v := rng.Int63()
					m.Put(k, v)
					ref[string(k)] = v
				case 4: // GetOrPut
					v := rng.Int63()
					p, _, existed := m.GetOrPut(k, v)
					_, refExisted := ref[string(k)]
					if existed != refExisted {
						t.Fatalf("GetOrPut existed=%v, reference says %v", existed, refExisted)
					}
					if !existed {
						ref[string(k)] = v
					}
					if *p != ref[string(k)] {
						t.Fatalf("GetOrPut value %d, want %d", *p, ref[string(k)])
					}
				case 5, 6: // delete
					got := m.Delete(k)
					_, want := ref[string(k)]
					if got != want {
						t.Fatalf("Delete = %v, reference says %v", got, want)
					}
					delete(ref, string(k))
				case 7, 8: // lookup
					got, ok := m.Get(k)
					want, refOK := ref[string(k)]
					if ok != refOK || (ok && got != want) {
						t.Fatalf("Get = (%d,%v), want (%d,%v)", got, ok, want, refOK)
					}
				case 9:
					if rng.Intn(50) == 0 { // occasional full reset
						m.Reset()
						ref = refBag{}
					}
				}
				if op%257 == 0 {
					checkAgainstRef(t, &m, ref)
				}
			}
			checkAgainstRef(t, &m, ref)
		})
	}
}

// TestDeletedSlotReuse empties and refills the table repeatedly:
// backward-shift deletion must leave no tombstones, so the slot table
// never grows past what the peak population requires.
func TestDeletedSlotReuse(t *testing.T) {
	var m Map[int]
	keys := make([][]byte, 64)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%03d", i))
	}
	for i, k := range keys {
		m.Put(k, i)
	}
	capAfterFill := m.Cap()
	for round := 0; round < 200; round++ {
		for _, k := range keys {
			if !m.Delete(k) {
				t.Fatalf("round %d: Delete(%q) = false", round, k)
			}
		}
		if m.Len() != 0 {
			t.Fatalf("round %d: Len = %d after deleting all", round, m.Len())
		}
		for i, k := range keys {
			m.Put(k, i*round)
		}
		if m.Cap() != capAfterFill {
			t.Fatalf("round %d: cap grew %d -> %d despite constant population (tombstone leak)",
				round, capAfterFill, m.Cap())
		}
	}
	for i, k := range keys {
		if v, ok := m.Get(k); !ok || v != i*199 {
			t.Fatalf("Get(%q) = (%d,%v), want (%d,true)", k, v, ok, i*199)
		}
	}
}

// TestGrowthBoundaries inserts exactly up to and across each load-factor
// threshold and verifies every key survives the rehash.
func TestGrowthBoundaries(t *testing.T) {
	var m Map[int]
	for i := 0; i < 3000; i++ {
		before := m.Cap()
		m.Put([]byte(fmt.Sprintf("%d", i)), i)
		if m.Cap() != before { // just rehashed: audit everything
			for j := 0; j <= i; j++ {
				v, ok := m.Get([]byte(fmt.Sprintf("%d", j)))
				if !ok || v != j {
					t.Fatalf("after growth to %d at n=%d: key %d = (%d,%v)",
						m.Cap(), i+1, j, v, ok)
				}
			}
		}
	}
}

// TestRefStability checks that Refs handed out by GetOrPut keep pointing
// at the right bytes across arbitrarily many later inserts and rehashes
// (the arena is append-only), and that KeyAt round-trips exactly.
func TestRefStability(t *testing.T) {
	var m Map[int]
	type held struct {
		key []byte
		ref Ref
	}
	var holds []held
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		k := make([]byte, 1+rng.Intn(20))
		rng.Read(k)
		_, ref, existed := m.GetOrPut(k, i)
		if !existed {
			holds = append(holds, held{key: append([]byte(nil), k...), ref: ref})
		}
	}
	for _, h := range holds {
		if !bytes.Equal(m.KeyAt(h.ref), h.key) {
			t.Fatalf("KeyAt(%v) = %x, want %x", h.ref, m.KeyAt(h.ref), h.key)
		}
	}
}

// TestValuePointerWrite verifies the GetOrPut pointer writes through to
// the stored record even when the insert displaced residents (robin
// hood) or the record was placed via displacement chains.
func TestValuePointerWrite(t *testing.T) {
	var m Map[int]
	ptrs := map[string]*int{}
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("k%04d", i))
		p, _, _ := m.GetOrPut(k, 0)
		*p = i * 3
		ptrs[string(k)] = p // stale after next mutation; only *p written above counts
	}
	_ = ptrs
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("k%04d", i))
		if v, _ := m.Get(k); v != i*3 {
			t.Fatalf("key %q = %d, want %d", k, v, i*3)
		}
	}
}

// TestProbeStats sanity-checks the observability counters: ops grow
// monotonically, and mean probe length stays modest at the working load
// factor (robin hood keeps variance tight).
func TestProbeStats(t *testing.T) {
	var m Map[int]
	for i := 0; i < 10000; i++ {
		m.Put([]byte(fmt.Sprintf("key-%d", i)), i)
	}
	for i := 0; i < 10000; i++ {
		m.Get([]byte(fmt.Sprintf("key-%d", i)))
	}
	probes, ops, maxProbe := m.ProbeStats()
	if ops < 20000 {
		t.Fatalf("ops = %d, want >= 20000", ops)
	}
	mean := float64(probes) / float64(ops)
	if mean > 4 {
		t.Errorf("mean probe length %.2f, want <= 4 at 0.875 load", mean)
	}
	if maxProbe < 1 {
		t.Errorf("maxProbe = %d, want >= 1", maxProbe)
	}
}

// TestRangeOrderCoversAll double-checks Range against sorted key dumps
// after a delete-heavy workload.
func TestRangeOrderCoversAll(t *testing.T) {
	var m Map[int]
	ref := map[string]int{}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("%d", rng.Intn(500))
		if rng.Intn(3) == 0 {
			m.Delete([]byte(k))
			delete(ref, k)
		} else {
			m.Put([]byte(k), i)
			ref[k] = i
		}
	}
	var got, want []string
	m.Range(func(k []byte, v *int) bool {
		got = append(got, fmt.Sprintf("%s=%d", k, *v))
		return true
	})
	for k, v := range ref {
		want = append(want, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Strings(got)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("Range yielded %d entries, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("entry %d: %q != %q", i, got[i], want[i])
		}
	}
}
