// Package bytemap implements an open-addressed robin-hood hash table
// keyed by raw byte slices. It exists so the hot maintenance path can
// probe indexes directly on value.KeyEncoder output without
// materializing a Go string per lookup: Go's built-in map[string]V
// forces a string allocation on every insert (and on every lookup that
// is not a literal map[string(b)] expression), and its buckets are
// pointer-rich, so a steady-state window spends most of its time in
// mallocgc and GC scanning. A bytemap.Map stores keys in an append-only
// paged byte arena and records in a flat pointer-lean slot array, so
// inserts copy the key once, lookups allocate nothing, and the GC sees a
// handful of backing arrays instead of thousands of strings. The arena
// is paged (fixed 64 KiB chunks) rather than one contiguous slice: a
// growing map appends a fresh page instead of doubling-and-copying every
// key it ever stored, so long-lived directories (storage row and bucket
// directories grow for the life of the relation) never re-copy old keys
// and produce no growth garbage on the apply path.
//
// Robin-hood displacement (an insert steals the slot of any record
// closer to its home bucket) bounds the variance of probe lengths, and
// deletion uses backward shifting, so the table never accumulates
// tombstones. The zero Map is empty and ready to use.
//
// Maps are not safe for concurrent use. Value pointers returned by
// GetOrPut/Ptr are valid only until the next mutation.
package bytemap

import (
	"bytes"
	"hash/maphash"
)

// seed is the process-wide hash seed. Iteration order is already
// unspecified, so a per-process random seed costs nothing and guards
// against accidental dependence on bucket layout.
var seed = maphash.MakeSeed()

// Hash returns the hash of k under the package seed.
func Hash(k []byte) uint64 { return maphash.Bytes(seed, k) }

// Arena page geometry: Off packs (page index << pageShift) | byte
// offset within the page. Keys never span pages; a key of pageSize
// bytes or more gets a dedicated page of exactly its length (offset 0),
// so the in-page offset always fits pageShift bits.
const (
	pageShift = 16
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Ref locates a key inside a Map's arena. Refs stay valid across
// inserts and rehashes (the arena is append-only) until Reset.
type Ref struct {
	Off uint32
	Len uint32
}

type slot[V any] struct {
	hash uint64
	koff uint32
	klen uint32
	// dist is the probe-sequence position of the record plus one; zero
	// marks an empty slot. The robin-hood invariant is that scanning a
	// probe sequence sees non-decreasing dist until the record or an
	// empty slot is found.
	dist int32
	val  V
}

// Map is an open-addressed robin-hood hash table from byte-slice keys
// to values of type V. The zero value is an empty map.
type Map[V any] struct {
	slots []slot[V] // power-of-two length
	pages [][]byte  // append-only paged key arena
	cur   int       // index of the page currently being filled
	mask  uint64
	n     int

	// Cumulative probe accounting (lookups and inserts), for the
	// open-index observability counters.
	probes   uint64
	ops      uint64
	maxProbe int32
}

// Len returns the number of live entries.
func (m *Map[V]) Len() int { return m.n }

// Cap returns the current slot-table size (0 before first insert).
func (m *Map[V]) Cap() int { return len(m.slots) }

// ProbeStats returns the cumulative probe count and operation count
// since the map was created (Reset does not clear them), plus the
// longest probe sequence ever walked.
func (m *Map[V]) ProbeStats() (probes, ops uint64, maxProbe int) {
	return m.probes, m.ops, int(m.maxProbe)
}

// KeyAt returns the key bytes a Ref points at. The slice aliases the
// arena: callers must not modify it, and it dies at Reset.
func (m *Map[V]) KeyAt(r Ref) []byte {
	off := r.Off & pageMask
	return m.pages[r.Off>>pageShift][off : off+r.Len]
}

func (m *Map[V]) note(d int32) {
	m.probes += uint64(d)
	m.ops++
	if d > m.maxProbe {
		m.maxProbe = d
	}
}

func (m *Map[V]) keyEq(s *slot[V], h uint64, k []byte) bool {
	if s.hash != h || int(s.klen) != len(k) {
		return false
	}
	off := s.koff & pageMask
	return bytes.Equal(m.pages[s.koff>>pageShift][off:off+s.klen], k)
}

// Get returns the value stored under k.
func (m *Map[V]) Get(k []byte) (V, bool) {
	if p := m.lookup(k); p != nil {
		return p.val, true
	}
	var zero V
	return zero, false
}

// Ptr returns a pointer to the value stored under k, or nil. The
// pointer is invalidated by the next mutation.
func (m *Map[V]) Ptr(k []byte) *V {
	if p := m.lookup(k); p != nil {
		return &p.val
	}
	return nil
}

func (m *Map[V]) lookup(k []byte) *slot[V] {
	if m.n == 0 {
		return nil
	}
	h := Hash(k)
	i := h & m.mask
	d := int32(1)
	for {
		s := &m.slots[i]
		if s.dist == 0 || s.dist < d {
			m.note(d)
			return nil
		}
		if m.keyEq(s, h, k) {
			m.note(d)
			return s
		}
		d++
		i = (i + 1) & m.mask
	}
}

// Put stores v under k, replacing any existing value, and returns the
// key's arena Ref.
func (m *Map[V]) Put(k []byte, v V) Ref {
	p, ref, _ := m.GetOrPut(k, v)
	*p = v
	return ref
}

// GetOrPut returns a pointer to the value under k, inserting v first
// when the key is absent. existed reports whether the key was already
// present (in which case v was NOT stored). The pointer is valid until
// the next mutation.
func (m *Map[V]) GetOrPut(k []byte, v V) (p *V, ref Ref, existed bool) {
	if len(m.slots) == 0 || (m.n+1)*8 > len(m.slots)*7 {
		m.grow()
	}
	h := Hash(k)
	i := h & m.mask
	d := int32(1)
	for {
		s := &m.slots[i]
		if s.dist == 0 {
			ref = m.appendKey(k)
			*s = slot[V]{hash: h, koff: ref.Off, klen: ref.Len, dist: d, val: v}
			m.n++
			m.note(d)
			return &s.val, ref, false
		}
		if m.keyEq(s, h, k) {
			m.note(d)
			return &s.val, Ref{Off: s.koff, Len: s.klen}, true
		}
		if s.dist < d {
			// Robin hood: the resident is closer to home than we are.
			// Take its slot and push it (and transitively anyone it
			// displaces) further down the probe sequence.
			ref = m.appendKey(k)
			cand := slot[V]{hash: h, koff: ref.Off, klen: ref.Len, dist: d, val: v}
			placed := -1
			for {
				s := &m.slots[i]
				if s.dist == 0 {
					*s = cand
					if placed < 0 {
						placed = int(i)
					}
					m.n++
					m.note(cand.dist)
					return &m.slots[placed].val, ref, false
				}
				if s.dist < cand.dist {
					*s, cand = cand, *s
					if placed < 0 {
						placed = int(i)
					}
				}
				cand.dist++
				i = (i + 1) & m.mask
			}
		}
		d++
		i = (i + 1) & m.mask
	}
}

// Delete removes k, reporting whether it was present. Removal shifts
// subsequent records backward, so the table holds no tombstones; the
// key's arena bytes are reclaimed only at Reset.
func (m *Map[V]) Delete(k []byte) bool {
	if m.n == 0 {
		return false
	}
	h := Hash(k)
	i := h & m.mask
	d := int32(1)
	for {
		s := &m.slots[i]
		if s.dist == 0 || s.dist < d {
			m.note(d)
			return false
		}
		if m.keyEq(s, h, k) {
			m.note(d)
			break
		}
		d++
		i = (i + 1) & m.mask
	}
	// Backward-shift everything that probed past the hole.
	j := i
	for {
		nxt := (j + 1) & m.mask
		s := &m.slots[nxt]
		if s.dist <= 1 {
			break
		}
		m.slots[j] = *s
		m.slots[j].dist--
		j = nxt
	}
	m.slots[j] = slot[V]{}
	m.n--
	return true
}

// Range calls f for every entry until f returns false. Iteration order
// is unspecified. The key slice aliases the arena; f must not retain or
// modify it. f must not mutate the map.
func (m *Map[V]) Range(f func(k []byte, v *V) bool) {
	for i := range m.slots {
		s := &m.slots[i]
		if s.dist == 0 {
			continue
		}
		if !f(m.KeyAt(Ref{Off: s.koff, Len: s.klen}), &s.val) {
			return
		}
	}
}

// Reset empties the map, keeping the slot table and key arena capacity
// for reuse — the per-window scratch pattern. Refs and KeyAt slices
// from before the Reset are invalidated.
func (m *Map[V]) Reset() {
	clear(m.slots)
	for i := range m.pages {
		m.pages[i] = m.pages[i][:0]
	}
	m.cur = 0
	m.n = 0
}

func (m *Map[V]) appendKey(k []byte) Ref {
	need := len(k)
	if need >= pageSize {
		// Oversized key: a dedicated page of exactly its length.
		m.pages = append(m.pages, append(make([]byte, 0, need), k...))
		m.cur = len(m.pages) - 1
		return Ref{Off: uint32(m.cur) << pageShift, Len: uint32(need)}
	}
	for m.cur < len(m.pages) &&
		(len(m.pages[m.cur])+need > cap(m.pages[m.cur]) || len(m.pages[m.cur]) >= pageSize) {
		m.cur++
	}
	if m.cur == len(m.pages) {
		// Page sizes double from a small seed up to pageSize, so tiny
		// per-window scratch maps don't pin a full page while persistent
		// directories converge to full pages within a few appends.
		sz := 256
		if n := len(m.pages); n > 0 {
			if sz = 2 * cap(m.pages[n-1]); sz > pageSize {
				sz = pageSize
			}
		}
		for sz < need {
			sz *= 2
		}
		m.pages = append(m.pages, make([]byte, 0, sz))
	}
	p := m.pages[m.cur]
	off := uint32(len(p))
	m.pages[m.cur] = append(p, k...)
	return Ref{Off: uint32(m.cur)<<pageShift | off, Len: uint32(need)}
}

func (m *Map[V]) grow() {
	newCap := 16
	if len(m.slots) > 0 {
		newCap = len(m.slots) * 2
	}
	old := m.slots
	m.slots = make([]slot[V], newCap)
	m.mask = uint64(newCap - 1)
	for i := range old {
		if old[i].dist != 0 {
			m.reinsert(old[i])
		}
	}
}

// reinsert places an existing record into the grown table: keys are
// already in the arena and necessarily distinct, so no key compares or
// arena appends happen during a rehash.
func (m *Map[V]) reinsert(rec slot[V]) {
	rec.dist = 1
	i := rec.hash & m.mask
	for {
		s := &m.slots[i]
		if s.dist == 0 {
			*s = rec
			return
		}
		if s.dist < rec.dist {
			*s, rec = rec, *s
		}
		rec.dist++
		i = (i + 1) & m.mask
	}
}
