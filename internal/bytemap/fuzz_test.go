package bytemap

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/value"
)

// FuzzOpenIndex interprets the fuzz input as an op stream against both
// the open-addressed table and a map reference, including window resets.
// Beyond differential equality it asserts the no-aliasing property the
// storage layer depends on: a key handed to the map and later mutated by
// the caller (KeyEncoder reuses its buffer) must not change what the
// table stores, and arena-backed keys from before a Reset must never
// alias keys inserted after it.
//
// The seed corpus is built from value.KeyEncoder output over realistic
// tuples, so the byte shapes match what storage actually probes with.
func FuzzOpenIndex(f *testing.F) {
	var enc value.KeyEncoder
	seedTuples := []value.Tuple{
		{value.NewInt(1), value.NewString("alpha")},
		{value.NewInt(-7), value.NewFloat(3.25), value.NewBool(true)},
		{value.NewString(""), value.NewString("x")},
		{value.NewInt(1 << 40)},
		{},
	}
	var seed []byte
	for _, t := range seedTuples {
		k := enc.Key(t)
		seed = append(seed, byte(len(k)))
		seed = append(seed, k...)
	}
	f.Add(seed)
	f.Add([]byte{3, 'a', 'b', 'c', 0, 3, 'a', 'b', 'c', 255, 2, 'x', 'y'})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var m Map[uint32]
		ref := map[string]uint32{}
		// scratch simulates a reused KeyEncoder buffer: every key passes
		// through it and is clobbered right after use.
		scratch := make([]byte, 0, 64)
		var n uint32
		// Keys retained from the current window only (Reset invalidates
		// Refs, mirroring the per-window arena lifetime).
		type held struct {
			copy []byte
			ref  Ref
		}
		var holds []held

		i := 0
		next := func() ([]byte, byte, bool) {
			if i >= len(data) {
				return nil, 0, false
			}
			op := data[i]
			i++
			klen := int(op) % 17
			if i+klen > len(data) {
				klen = len(data) - i
			}
			scratch = append(scratch[:0], data[i:i+klen]...)
			i += klen
			return scratch, op, true
		}
		for {
			k, op, ok := next()
			if !ok {
				break
			}
			switch op % 5 {
			case 0, 1: // insert through the reused buffer
				n++
				_, ref2, existed := m.GetOrPut(k, n)
				if !existed {
					holds = append(holds, held{copy: append([]byte(nil), k...), ref: ref2})
					ref[string(k)] = n
				}
				// Clobber the caller buffer: the table must have copied.
				for j := range k {
					k[j] ^= 0xA5
				}
			case 2: // delete
				got := m.Delete(k)
				_, want := ref[string(k)]
				if got != want {
					t.Fatalf("Delete(%x) = %v, ref %v", k, got, want)
				}
				delete(ref, string(k))
			case 3: // lookup
				got, ok1 := m.Get(k)
				want, ok2 := ref[string(k)]
				if ok1 != ok2 || got != want {
					t.Fatalf("Get(%x) = (%d,%v), ref (%d,%v)", k, got, ok1, want, ok2)
				}
			case 4: // window boundary
				if op%3 == 0 {
					// Before reset: every live Ref must still read back its
					// original bytes (append-only arena, no aliasing among
					// inserts within the window).
					for _, h := range holds {
						if _, live := ref[string(h.copy)]; !live {
							continue
						}
						if !bytes.Equal(m.KeyAt(h.ref), h.copy) {
							t.Fatalf("arena aliasing: KeyAt = %x, want %x", m.KeyAt(h.ref), h.copy)
						}
					}
					m.Reset()
					ref = map[string]uint32{}
					holds = holds[:0]
				}
			}
		}
		// Final audit.
		if m.Len() != len(ref) {
			t.Fatalf("Len = %d, ref %d", m.Len(), len(ref))
		}
		for k, v := range ref {
			if got, ok := m.Get([]byte(k)); !ok || got != v {
				t.Fatalf("final Get(%x) = (%d,%v), want (%d,true)", k, got, ok, v)
			}
		}
		for _, h := range holds {
			if _, live := ref[string(h.copy)]; !live {
				continue
			}
			if !bytes.Equal(m.KeyAt(h.ref), h.copy) {
				t.Fatalf("final arena aliasing: KeyAt(%v) = %x, want %x", h.ref, m.KeyAt(h.ref), h.copy)
			}
		}
	})
}

func FuzzOpenIndexGrowth(f *testing.F) {
	f.Add(uint16(300), uint8(7))
	f.Fuzz(func(t *testing.T, count uint16, mod uint8) {
		if mod == 0 {
			mod = 1
		}
		var m Map[int]
		ref := map[string]int{}
		for i := 0; i < int(count); i++ {
			k := fmt.Sprintf("k%d", i%int(mod)*7919+i/int(mod))
			m.Put([]byte(k), i)
			ref[k] = i
			if i%int(mod) == 0 {
				m.Delete([]byte(k))
				delete(ref, k)
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("Len = %d, ref %d", m.Len(), len(ref))
		}
		for k, v := range ref {
			if got, ok := m.Get([]byte(k)); !ok || got != v {
				t.Fatalf("Get(%q) = (%d,%v), want (%d,true)", k, got, ok, v)
			}
		}
	})
}
