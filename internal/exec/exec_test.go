package exec

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/corpus"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/value"
)

func smallDB() *corpus.Database {
	return corpus.NewDatabase(corpus.Config{Departments: 5, EmpsPerDept: 3, ADeptsEveryN: 2})
}

func TestEvalScanSelectProject(t *testing.T) {
	db := smallDB()
	ev := NewFree(db.Store)
	emp := algebra.Scan(db.Catalog.MustGet("Emp"))
	res, err := ev.Eval(emp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Card() != 15 {
		t.Fatalf("Emp card = %d, want 15", res.Card())
	}
	sel := algebra.NewSelect(
		expr.Compare(expr.EQ, expr.C("Emp.DName"), expr.StrLit(corpus.DeptName(0))),
		emp,
	)
	res, err = ev.Eval(sel)
	if err != nil {
		t.Fatal(err)
	}
	if res.Card() != 3 {
		t.Fatalf("selected card = %d, want 3", res.Card())
	}
	proj := algebra.NewProject(
		[]algebra.ProjectItem{{E: expr.C("Emp.DName")}},
		emp,
	)
	res, err = ev.Eval(proj)
	if err != nil {
		t.Fatal(err)
	}
	// Bag projection merges: 5 distinct departments, counts of 3.
	if res.Card() != 5 || res.Total() != 15 {
		t.Fatalf("projected card = %d total = %d, want 5/15", res.Card(), res.Total())
	}
}

func TestEvalJoin(t *testing.T) {
	db := smallDB()
	ev := NewFree(db.Store)
	join := algebra.NewJoin(
		[]algebra.JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}},
		algebra.Scan(db.Catalog.MustGet("Emp")),
		algebra.Scan(db.Catalog.MustGet("Dept")),
	)
	res, err := ev.Eval(join)
	if err != nil {
		t.Fatal(err)
	}
	if res.Card() != 15 {
		t.Fatalf("join card = %d, want 15", res.Card())
	}
	if res.Schema.Len() != 6 {
		t.Fatalf("join schema width = %d, want 6", res.Schema.Len())
	}
}

func TestEvalJoinResidual(t *testing.T) {
	db := smallDB()
	ev := NewFree(db.Store)
	join := algebra.NewJoin(
		[]algebra.JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}},
		algebra.Scan(db.Catalog.MustGet("Emp")),
		algebra.Scan(db.Catalog.MustGet("Dept")),
	)
	join.Residual = expr.Compare(expr.GT, expr.C("Dept.Budget"), expr.C("Emp.Salary"))
	res, err := ev.Eval(join)
	if err != nil {
		t.Fatal(err)
	}
	// Budgets are far above salaries, so the residual keeps everything.
	if res.Card() != 15 {
		t.Fatalf("residual join card = %d", res.Card())
	}
}

func TestEvalAggregate(t *testing.T) {
	db := smallDB()
	ev := NewFree(db.Store)
	res, err := ev.Eval(db.SumOfSals())
	if err != nil {
		t.Fatal(err)
	}
	if res.Card() != 5 {
		t.Fatalf("SumOfSals card = %d, want 5", res.Card())
	}
	for _, row := range res.Rows {
		if got := row.Tuple[1].AsInt(); got != 3*corpus.BaseSalary {
			t.Errorf("salary sum = %d, want %d", got, 3*corpus.BaseSalary)
		}
	}
}

func TestEvalAggregateFunctions(t *testing.T) {
	db := smallDB()
	ev := NewFree(db.Store)
	agg := algebra.NewAggregate(
		[]string{"Emp.DName"},
		[]algebra.AggSpec{
			{Func: algebra.Count, As: "n"},
			{Func: algebra.Min, Arg: expr.C("Emp.Salary"), As: "lo"},
			{Func: algebra.Max, Arg: expr.C("Emp.Salary"), As: "hi"},
			{Func: algebra.Avg, Arg: expr.C("Emp.Salary"), As: "avg"},
		},
		algebra.Scan(db.Catalog.MustGet("Emp")),
	)
	res, err := ev.Eval(agg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Card() != 5 {
		t.Fatalf("groups = %d", res.Card())
	}
	row := res.Sorted()[0]
	if row.Tuple[1].AsInt() != 3 {
		t.Errorf("COUNT = %v", row.Tuple[1])
	}
	if row.Tuple[2].AsInt() != corpus.BaseSalary || row.Tuple[3].AsInt() != corpus.BaseSalary {
		t.Errorf("MIN/MAX = %v/%v", row.Tuple[2], row.Tuple[3])
	}
	if row.Tuple[4].AsFloat() != corpus.BaseSalary {
		t.Errorf("AVG = %v", row.Tuple[4])
	}
}

func TestProblemDeptInitiallyEmpty(t *testing.T) {
	db := smallDB()
	ev := NewFree(db.Store)
	res, err := ev.Eval(db.ProblemDept())
	if err != nil {
		t.Fatal(err)
	}
	if res.Card() != 0 {
		t.Fatalf("ProblemDept should start empty, got %d rows", res.Card())
	}
}

func TestProblemDeptDetectsOverspend(t *testing.T) {
	db := smallDB()
	// Push one employee's salary above the whole budget.
	rel := db.Store.MustGet("Emp")
	old := value.Tuple{
		value.NewString(corpus.EmpName(2, 0)),
		value.NewString(corpus.DeptName(2)),
		value.NewInt(corpus.BaseSalary),
	}
	newT := old.Clone()
	newT[2] = value.NewInt(10_000)
	rel.ApplyBatch([]storage.Mutation{{Old: old, New: newT}})

	ev := NewFree(db.Store)
	res, err := ev.Eval(db.ProblemDept())
	if err != nil {
		t.Fatal(err)
	}
	if res.Card() != 1 {
		t.Fatalf("ProblemDept card = %d, want 1", res.Card())
	}
	if got := res.Rows[0].Tuple[0].S; got != corpus.DeptName(2) {
		t.Errorf("problem dept = %q", got)
	}
}

// TestBothFigure1TreesAgree evaluates both expression trees of Figure 1
// and checks they produce the same result (they are equivalent).
func TestBothFigure1TreesAgree(t *testing.T) {
	db := smallDB()
	rel := db.Store.MustGet("Emp")
	old := value.Tuple{
		value.NewString(corpus.EmpName(1, 1)),
		value.NewString(corpus.DeptName(1)),
		value.NewInt(corpus.BaseSalary),
	}
	newT := old.Clone()
	newT[2] = value.NewInt(50_000)
	rel.ApplyBatch([]storage.Mutation{{Old: old, New: newT}})

	ev := NewFree(db.Store)
	a, err := ev.Eval(db.ProblemDept())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ev.Eval(db.ProblemDeptAlt())
	if err != nil {
		t.Fatal(err)
	}
	if a.Card() != 1 || b.Card() != 1 {
		t.Fatalf("cards = %d/%d, want 1/1", a.Card(), b.Card())
	}
	// Same department name; schemas differ in column provenance but the
	// DName value must agree.
	da := a.Rows[0].Tuple[a.Schema.MustResolve("Dept.DName")]
	dbv := b.Rows[0].Tuple[b.Schema.MustResolve("Emp.DName")]
	if da.S != dbv.S {
		t.Errorf("trees disagree: %q vs %q", da.S, dbv.S)
	}
}

func TestDistinctUnionDiff(t *testing.T) {
	db := smallDB()
	ev := NewFree(db.Store)
	emp := algebra.Scan(db.Catalog.MustGet("Emp"))
	proj := algebra.NewProject([]algebra.ProjectItem{{E: expr.C("Emp.DName")}}, emp)
	dis := algebra.NewDistinct(proj)
	res, err := ev.Eval(dis)
	if err != nil {
		t.Fatal(err)
	}
	if res.Card() != 5 || res.Total() != 5 {
		t.Fatalf("distinct = %d/%d", res.Card(), res.Total())
	}
	uni := algebra.NewUnion(proj, proj)
	res, err = ev.Eval(uni)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() != 30 {
		t.Fatalf("union total = %d, want 30", res.Total())
	}
	diff := algebra.NewDiff(uni, proj)
	res, err = ev.Eval(diff)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() != 15 {
		t.Fatalf("diff total = %d, want 15", res.Total())
	}
	empty := algebra.NewDiff(proj, proj)
	res, err = ev.Eval(empty)
	if err != nil {
		t.Fatal(err)
	}
	if res.Card() != 0 {
		t.Fatalf("self-diff should be empty, got %d", res.Card())
	}
}

// TestFilteredCostsMatchPaperQueries reproduces the I/O costs of the
// paper's Example 3.2 queries on the full-size instance: Q4e (sum of
// salaries of one department, posed on the aggregate over Emp) costs 11;
// Q3e (posed on the Emp⋈Dept equivalence node) costs 13; a Dept lookup
// (Q2Re/Q5Re) costs 2.
func TestFilteredCostsMatchPaperQueries(t *testing.T) {
	db := corpus.NewDatabase(corpus.PaperConfig())
	ev := New(db.Store)
	dname := value.Tuple{value.NewString(corpus.DeptName(7))}

	// Q4e: aggregate over Emp, filtered by department.
	db.Store.IO.Reset()
	res, err := ev.EvalFiltered(db.SumOfSals(), []string{"Emp.DName"}, dname)
	if err != nil {
		t.Fatal(err)
	}
	if res.Card() != 1 {
		t.Fatalf("Q4e rows = %d", res.Card())
	}
	if got := db.Store.IO.Total(); got != 11 {
		t.Errorf("Q4e cost = %d, want 11 (%v)", got, db.Store.IO)
	}

	// Q3e: join Emp⋈Dept filtered by department: 11 + 2.
	join := algebra.NewJoin(
		[]algebra.JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}},
		algebra.Scan(db.Catalog.MustGet("Emp")),
		algebra.Scan(db.Catalog.MustGet("Dept")),
	)
	db.Store.IO.Reset()
	res, err = ev.EvalFiltered(join, []string{"Dept.DName"}, dname)
	if err != nil {
		t.Fatal(err)
	}
	if res.Card() != 10 {
		t.Fatalf("Q3e rows = %d, want 10", res.Card())
	}
	if got := db.Store.IO.Total(); got != 13 {
		t.Errorf("Q3e cost = %d, want 13 (%v)", got, db.Store.IO)
	}

	// Q2Re/Q5Re: single Dept tuple by key: 2.
	db.Store.IO.Reset()
	res, err = ev.EvalFiltered(
		algebra.Scan(db.Catalog.MustGet("Dept")),
		[]string{"Dept.DName"}, dname)
	if err != nil {
		t.Fatal(err)
	}
	if res.Card() != 1 {
		t.Fatalf("Dept lookup rows = %d", res.Card())
	}
	if got := db.Store.IO.Total(); got != 2 {
		t.Errorf("Dept lookup cost = %d, want 2 (%v)", got, db.Store.IO)
	}
}

// TestEvalFilteredMatchesEvalThenFilter is the correctness property: the
// pushed-down plan must return exactly what filter-after-evaluate does.
func TestEvalFilteredMatchesEvalThenFilter(t *testing.T) {
	db := smallDB()
	ev := NewFree(db.Store)
	views := []algebra.Node{
		db.ProblemDept(),
		db.ProblemDeptAlt(),
		db.SumOfSals(),
		db.ADeptsStatus(),
	}
	cols := []string{"Dept.DName"}
	sumCols := []string{"Emp.DName"}
	for vi, v := range views {
		fcols := cols
		if vi == 2 {
			fcols = sumCols
		}
		for d := 0; d < 5; d++ {
			key := value.Tuple{value.NewString(corpus.DeptName(d))}
			fast, err := ev.EvalFiltered(v, fcols, key)
			if err != nil {
				t.Fatalf("view %d dept %d: %v", vi, d, err)
			}
			slow, err := ev.evalThenFilter(v, fcols, key)
			if err != nil {
				t.Fatalf("view %d dept %d oracle: %v", vi, d, err)
			}
			if !sameRows(fast, slow) {
				t.Errorf("view %d dept %d: pushed plan diverges from oracle:\nfast=%v\nslow=%v",
					vi, d, fast.Sorted(), slow.Sorted())
			}
		}
	}
}

func sameRows(a, b *Result) bool {
	as, bs := a.Sorted(), b.Sorted()
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if !as[i].Tuple.Equal(bs[i].Tuple) || as[i].Count != bs[i].Count {
			return false
		}
	}
	return true
}
