package exec

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/corpus"
	"repro/internal/expr"
	"repro/internal/value"
)

// randomTree builds a random algebra tree over the corporate schema whose
// schema retains Emp.DName (so a department filter is always meaningful).
func randomTree(rng *rand.Rand, db *corpus.Database) algebra.Node {
	emp := algebra.Scan(db.Catalog.MustGet("Emp"))
	dept := algebra.Scan(db.Catalog.MustGet("Dept"))
	adepts := algebra.Scan(db.Catalog.MustGet("ADepts"))
	var tree algebra.Node = emp
	if rng.Intn(2) == 0 {
		if rng.Intn(2) == 0 {
			tree = algebra.NewJoin([]algebra.JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}}, tree, dept)
		} else {
			tree = algebra.NewJoin([]algebra.JoinCond{{Left: "Emp.DName", Right: "ADepts.DName"}}, tree, adepts)
		}
	}
	for i := 0; i < rng.Intn(3); i++ {
		switch rng.Intn(4) {
		case 0:
			if !tree.Schema().Has("Emp.Salary") {
				continue
			}
			tree = algebra.NewSelect(
				expr.Compare(expr.GE, expr.C("Emp.Salary"), expr.IntLit(int64(rng.Intn(200)))), tree)
		case 1:
			if !tree.Schema().Has("Emp.Salary") {
				continue
			}
			items := []algebra.ProjectItem{{E: expr.C("Emp.DName")}, {E: expr.C("Emp.Salary")}}
			tree = algebra.NewProject(items, tree)
		case 2:
			tree = algebra.NewDistinct(tree)
		case 3:
			if tree.Schema().Has("Emp.Salary") {
				tree = algebra.NewAggregate(
					[]string{"Emp.DName"},
					[]algebra.AggSpec{
						{Func: algebra.Sum, Arg: expr.C("Emp.Salary"), As: "S"},
						{Func: algebra.Min, Arg: expr.C("Emp.Salary"), As: "Lo"},
					}, tree)
			}
		}
	}
	return tree
}

// TestEvalFilteredRandomTrees: on random trees, the pushed filtered plan
// must agree with evaluate-then-filter, and charged evaluation must agree
// with free evaluation.
func TestEvalFilteredRandomTrees(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		db := corpus.NewDatabase(corpus.Config{
			Departments: 2 + rng.Intn(4), EmpsPerDept: 1 + rng.Intn(4), ADeptsEveryN: 2,
		})
		tree := randomTree(rng, db)
		free := NewFree(db.Store)
		charged := New(db.Store)
		// Pick a filter column present in the schema.
		var cols []string
		if tree.Schema().Has("Emp.DName") {
			cols = []string{"Emp.DName"}
		} else {
			continue
		}
		key := value.Tuple{value.NewString(corpus.DeptName(rng.Intn(4)))}

		fast, err := charged.EvalFiltered(tree, cols, key)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, algebra.Render(tree))
		}
		slow, err := free.evalThenFilter(tree, cols, key)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRows(fast, slow) {
			t.Fatalf("trial %d: pushed filter diverges\n%s\nfast=%v\nslow=%v",
				trial, algebra.Render(tree), fast.Sorted(), slow.Sorted())
		}
		// Full evaluation: charged vs free must be identical results.
		a, err := charged.Eval(tree)
		if err != nil {
			t.Fatal(err)
		}
		b, err := free.Eval(tree)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRows(a, b) {
			t.Fatalf("trial %d: charged and free evaluation disagree", trial)
		}
	}
}

// TestFilteredChargesNeverExceedFullScan: sanity on the cost accounting —
// a pushed point query should not cost more than scanning everything
// (each base relation fully) plus index pages.
func TestFilteredChargesNeverExceedFullScan(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		db := corpus.NewDatabase(corpus.Config{Departments: 5, EmpsPerDept: 4, ADeptsEveryN: 2})
		tree := randomTree(rng, db)
		if !tree.Schema().Has("Emp.DName") {
			continue
		}
		ev := New(db.Store)
		db.Store.IO.Reset()
		if _, err := ev.EvalFiltered(tree, []string{"Emp.DName"},
			value.Tuple{value.NewString(corpus.DeptName(1))}); err != nil {
			t.Fatal(err)
		}
		got := db.Store.IO.Total()
		// Upper bound: scan of all base tuples + a generous index allowance.
		bound := int64(5 + 20 + 3 + 50)
		if got > bound {
			t.Errorf("trial %d: filtered eval charged %d I/Os (> %d)\n%s",
				trial, got, bound, algebra.Render(tree))
		}
	}
}

// TestEvalErrorsSurface: evaluating against a store missing the relation
// errors rather than panicking.
func TestEvalErrorsSurface(t *testing.T) {
	db := corpus.NewDatabase(corpus.Config{Departments: 2, EmpsPerDept: 2})
	emp := algebra.Scan(db.Catalog.MustGet("Emp"))
	db.Store.Drop("Emp")
	ev := NewFree(db.Store)
	if _, err := ev.Eval(emp); err == nil {
		t.Error("missing relation should error")
	}
	if _, err := ev.EvalFiltered(emp, []string{"Emp.DName"},
		value.Tuple{value.NewString("x")}); err == nil {
		t.Error("missing relation should error on filtered path too")
	}
	if _, err := ev.EvalFiltered(emp, []string{"Emp.DName"}, value.Tuple{}); err == nil {
		t.Error("arity mismatch should error")
	}
}

