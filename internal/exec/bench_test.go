package exec

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/corpus"
	"repro/internal/expr"
)

// BenchmarkEvalOperators exercises the allocation-sensitive result
// helpers (hashJoin, projectResult, distinctResult, unionResult) on a
// moderately sized instance; run with -benchmem to track the effect of
// the preallocated build/merge maps.
func BenchmarkEvalOperators(b *testing.B) {
	db := corpus.NewDatabase(corpus.Config{Departments: 50, EmpsPerDept: 20, ADeptsEveryN: 2})
	ev := NewFree(db.Store)
	join := algebra.NewJoin(
		[]algebra.JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}},
		algebra.Scan(db.Catalog.MustGet("Emp")),
		algebra.Scan(db.Catalog.MustGet("Dept")),
	)
	proj := algebra.NewProject(
		[]algebra.ProjectItem{{E: expr.C("Emp.DName")}, {E: expr.C("Dept.MName")}},
		join,
	)
	dis := algebra.NewDistinct(proj)
	tree := algebra.NewUnion(dis, dis)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Eval(tree); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalMemoShared measures the same tree with a per-iteration
// memo installed: the duplicated Distinct input is evaluated once.
func BenchmarkEvalMemoShared(b *testing.B) {
	db := corpus.NewDatabase(corpus.Config{Departments: 50, EmpsPerDept: 20, ADeptsEveryN: 2})
	ev := NewFree(db.Store)
	join := algebra.NewJoin(
		[]algebra.JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}},
		algebra.Scan(db.Catalog.MustGet("Emp")),
		algebra.Scan(db.Catalog.MustGet("Dept")),
	)
	proj := algebra.NewProject(
		[]algebra.ProjectItem{{E: expr.C("Emp.DName")}, {E: expr.C("Dept.MName")}},
		join,
	)
	dis := algebra.NewDistinct(proj)
	tree := algebra.NewUnion(dis, dis)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Memo = Memo{}
		if _, err := ev.Eval(tree); err != nil {
			b.Fatal(err)
		}
	}
}
