package exec

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/storage"
	"repro/internal/value"
)

// aggState accumulates one aggregate over one group.
type aggState struct {
	sum     value.Value
	count   int64
	min     value.Value
	max     value.Value
	started bool
}

func (st *aggState) add(v value.Value, count int64) {
	if v.IsNull() {
		return
	}
	if !st.started {
		st.sum = value.NewInt(0)
		st.min = v
		st.max = v
		st.started = true
	}
	for i := int64(0); i < count; i++ {
		st.sum = value.Add(st.sum, v)
	}
	st.count += count
	if value.Compare(v, st.min) < 0 {
		st.min = v
	}
	if value.Compare(v, st.max) > 0 {
		st.max = v
	}
}

func (st *aggState) final(f algebra.AggFunc) value.Value {
	switch f {
	case algebra.Count:
		return value.NewInt(st.count)
	case algebra.Sum:
		if !st.started {
			return value.NewNull()
		}
		return st.sum
	case algebra.Avg:
		if st.count == 0 {
			return value.NewNull()
		}
		return value.NewFloat(st.sum.AsFloat() / float64(st.count))
	case algebra.Min:
		if !st.started {
			return value.NewNull()
		}
		return st.min
	case algebra.Max:
		if !st.started {
			return value.NewNull()
		}
		return st.max
	default:
		return value.NewNull()
	}
}

func aggregateResult(in *Result, a *algebra.Aggregate) (*Result, error) {
	gpos := make([]int, len(a.GroupBy))
	for i, g := range a.GroupBy {
		j, err := in.Schema.Resolve(g)
		if err != nil {
			return nil, err
		}
		gpos[i] = j
	}
	argFns := make([]func(value.Tuple) value.Value, len(a.Aggs))
	for i, ag := range a.Aggs {
		if ag.Arg == nil {
			if ag.Func != algebra.Count {
				return nil, fmt.Errorf("exec: %s requires an argument", ag.Func)
			}
			continue
		}
		f, err := ag.Arg.Compile(in.Schema)
		if err != nil {
			return nil, err
		}
		argFns[i] = f
	}
	type group struct {
		key    value.Tuple
		states []aggState
	}
	groups := map[string]*group{}
	var order []string
	var enc value.KeyEncoder
	for _, row := range in.Rows {
		kb := enc.ProjectedKey(row.Tuple, gpos)
		g, ok := groups[string(kb)]
		if !ok {
			k := string(kb)
			g = &group{key: row.Tuple.Project(gpos), states: make([]aggState, len(a.Aggs))}
			groups[k] = g
			order = append(order, k)
		}
		for i, ag := range a.Aggs {
			if ag.Arg == nil { // COUNT(*)
				g.states[i].count += row.Count
				g.states[i].started = true
				continue
			}
			g.states[i].add(argFns[i](row.Tuple), row.Count)
		}
	}
	out := &Result{Schema: a.Schema()}
	for _, k := range order {
		g := groups[k]
		t := make(value.Tuple, 0, len(gpos)+len(a.Aggs))
		t = append(t, g.key...)
		for i, ag := range a.Aggs {
			t = append(t, g.states[i].final(ag.Func))
		}
		out.Rows = append(out.Rows, storage.Row{Tuple: t, Count: 1})
	}
	return out, nil
}
