// Package exec evaluates logical algebra trees against a storage.Store.
//
// Two entry points matter:
//
//   - Eval computes the full result of an expression (used to materialize
//     views initially and as a correctness oracle in tests).
//   - EvalFiltered computes σ[cols = key](expr), pushing the equality
//     filter as deep as possible so that base relations and materialized
//     views are accessed through their hash indexes. This is exactly how
//     the paper answers the queries posed on equivalence nodes during
//     delta propagation (Q2Ld, Q3e, ... of Example 3.2).
//
// The evaluator charges I/O through the store's counter according to the
// storage package's conventions; Free mode suppresses charging (initial
// materialization, oracles).
package exec

import (
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/value"
)

// Result is an in-memory relation: a schema and counted rows.
type Result struct {
	Schema *catalog.Schema
	Rows   []storage.Row
}

// Card returns the number of distinct tuples in the result.
func (r *Result) Card() int { return len(r.Rows) }

// Total returns the bag cardinality (sum of counts).
func (r *Result) Total() int64 {
	var n int64
	for _, row := range r.Rows {
		n += row.Count
	}
	return n
}

// Sorted returns the rows sorted lexicographically (stable comparisons
// for tests and golden output).
func (r *Result) Sorted() []storage.Row {
	out := make([]storage.Row, len(r.Rows))
	copy(out, r.Rows)
	sort.Slice(out, func(i, j int) bool {
		return out[i].Tuple.Compare(out[j].Tuple) < 0
	})
	return out
}

// Evaluator executes algebra trees against a store.
type Evaluator struct {
	Store *storage.Store
	// Free suppresses I/O charging (scans and lookups become free).
	Free bool
	// Memo, when non-nil, shares full-evaluation results across repeated
	// subtrees within one maintenance window (see Memo).
	Memo Memo
	// Win, when non-nil, is the maintenance window's arena: join output
	// tuples are bump-allocated from it instead of the heap, which makes
	// every Result subject to the window ownership rule — rows are valid
	// only until the arena's next Reset. Leave nil for oracle /
	// materialization evaluators whose results must outlive a window.
	Win *value.Arena
}

// New returns a charging evaluator over the store.
func New(st *storage.Store) *Evaluator { return &Evaluator{Store: st} }

// NewFree returns a non-charging evaluator (oracle / initial load).
func NewFree(st *storage.Store) *Evaluator { return &Evaluator{Store: st, Free: true} }

// Eval computes the full result of n. When a window memo is installed,
// repeated subtrees are evaluated once and served from the memo after
// that (results are shared — treat them as read-only).
func (ev *Evaluator) Eval(n algebra.Node) (*Result, error) {
	if res, ok := ev.evalMemo(n); ok {
		return res, nil
	}
	res, err := ev.evalNode(n)
	if err == nil && ev.Memo != nil {
		ev.Memo[n] = res
	}
	return res, err
}

func (ev *Evaluator) evalNode(n algebra.Node) (*Result, error) {
	switch t := n.(type) {
	case *algebra.Rel:
		rel, ok := ev.Store.Get(t.Def.Name)
		if !ok {
			return nil, fmt.Errorf("exec: relation %q not stored", t.Def.Name)
		}
		var rows []storage.Row
		if ev.Free {
			rows = rel.ScanFree()
		} else {
			rows = rel.Scan()
		}
		return &Result{Schema: t.Schema(), Rows: rows}, nil
	case *algebra.Select:
		in, err := ev.Eval(t.Input)
		if err != nil {
			return nil, err
		}
		return filterResult(in, t.Pred)
	case *algebra.Project:
		in, err := ev.Eval(t.Input)
		if err != nil {
			return nil, err
		}
		return projectResult(in, t)
	case *algebra.Join:
		l, err := ev.Eval(t.L)
		if err != nil {
			return nil, err
		}
		r, err := ev.Eval(t.R)
		if err != nil {
			return nil, err
		}
		return ev.hashJoin(t, l, r)
	case *algebra.Aggregate:
		in, err := ev.Eval(t.Input)
		if err != nil {
			return nil, err
		}
		return aggregateResult(in, t)
	case *algebra.Distinct:
		in, err := ev.Eval(t.Input)
		if err != nil {
			return nil, err
		}
		return distinctResult(in), nil
	case *algebra.Union:
		l, err := ev.Eval(t.L)
		if err != nil {
			return nil, err
		}
		r, err := ev.Eval(t.R)
		if err != nil {
			return nil, err
		}
		return unionResult(t.Schema(), l, r, +1), nil
	case *algebra.Diff:
		l, err := ev.Eval(t.L)
		if err != nil {
			return nil, err
		}
		r, err := ev.Eval(t.R)
		if err != nil {
			return nil, err
		}
		return unionResult(t.Schema(), l, r, -1), nil
	default:
		return nil, fmt.Errorf("exec: unsupported node %T", n)
	}
}

func filterResult(in *Result, pred expr.Expr) (*Result, error) {
	f, err := pred.Compile(in.Schema)
	if err != nil {
		return nil, err
	}
	out := &Result{Schema: in.Schema}
	for _, row := range in.Rows {
		if f(row.Tuple).Truth() {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func projectResult(in *Result, p *algebra.Project) (*Result, error) {
	fs := make([]func(value.Tuple) value.Value, len(p.Items))
	for i, it := range p.Items {
		f, err := it.E.Compile(in.Schema)
		if err != nil {
			return nil, err
		}
		fs[i] = f
	}
	// Bag projection merges rows that collapse onto the same tuple.
	// Sized for the no-collapse case, the common one along update tracks.
	merged := make(map[string]*storage.Row, len(in.Rows))
	order := make([]string, 0, len(in.Rows))
	var enc value.KeyEncoder
	for _, row := range in.Rows {
		t := make(value.Tuple, len(fs))
		for i, f := range fs {
			t[i] = f(row.Tuple)
		}
		kb := enc.Key(t)
		if e, ok := merged[string(kb)]; ok {
			e.Count += row.Count
		} else {
			k := string(kb)
			merged[k] = &storage.Row{Tuple: t, Count: row.Count}
			order = append(order, k)
		}
	}
	out := &Result{Schema: p.Schema()}
	for _, k := range order {
		out.Rows = append(out.Rows, *merged[k])
	}
	return out, nil
}

func (ev *Evaluator) hashJoin(j *algebra.Join, l, r *Result) (*Result, error) {
	lpos := make([]int, len(j.On))
	rpos := make([]int, len(j.On))
	for i, c := range j.On {
		li, err := l.Schema.Resolve(c.Left)
		if err != nil {
			return nil, err
		}
		ri, err := r.Schema.Resolve(c.Right)
		if err != nil {
			return nil, err
		}
		lpos[i], rpos[i] = li, ri
	}
	build := make(map[string][]storage.Row, len(r.Rows))
	var enc value.KeyEncoder
	for _, row := range r.Rows {
		kb := enc.ProjectedKey(row.Tuple, rpos)
		build[string(kb)] = append(build[string(kb)], row)
	}
	outSchema := j.Schema()
	var residual func(value.Tuple) value.Value
	if j.Residual != nil {
		f, err := j.Residual.Compile(outSchema)
		if err != nil {
			return nil, err
		}
		residual = f
	}
	out := &Result{Schema: outSchema, Rows: make([]storage.Row, 0, len(l.Rows))}
	for _, lrow := range l.Rows {
		kb := enc.ProjectedKey(lrow.Tuple, lpos)
		for _, rrow := range build[string(kb)] {
			t := ev.Win.ConcatTuples(lrow.Tuple, rrow.Tuple)
			if residual != nil && !residual(t).Truth() {
				continue
			}
			out.Rows = append(out.Rows, storage.Row{Tuple: t, Count: lrow.Count * rrow.Count})
		}
	}
	return out, nil
}

func distinctResult(in *Result) *Result {
	out := &Result{Schema: in.Schema}
	seen := make(map[string]bool, len(in.Rows))
	var enc value.KeyEncoder
	for _, row := range in.Rows {
		kb := enc.Key(row.Tuple)
		if !seen[string(kb)] && row.Count > 0 {
			seen[string(kb)] = true
			out.Rows = append(out.Rows, storage.Row{Tuple: row.Tuple, Count: 1})
		}
	}
	return out
}

func unionResult(schema *catalog.Schema, l, r *Result, sign int64) *Result {
	merged := make(map[string]*storage.Row, len(l.Rows)+len(r.Rows))
	order := make([]string, 0, len(l.Rows)+len(r.Rows))
	var enc value.KeyEncoder
	add := func(row storage.Row, mult int64) {
		kb := enc.Key(row.Tuple)
		if e, ok := merged[string(kb)]; ok {
			e.Count += row.Count * mult
		} else {
			k := string(kb)
			merged[k] = &storage.Row{Tuple: row.Tuple, Count: row.Count * mult}
			order = append(order, k)
		}
	}
	for _, row := range l.Rows {
		add(row, 1)
	}
	for _, row := range r.Rows {
		add(row, sign)
	}
	out := &Result{Schema: schema}
	for _, k := range order {
		e := merged[k]
		if e.Count > 0 {
			out.Rows = append(out.Rows, *e)
		}
	}
	return out
}
