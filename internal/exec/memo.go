package exec

import (
	"repro/internal/algebra"
	"repro/internal/obs"
)

var obsSharedEvals = obs.C("exec.subplan.shared_evals")

// Memo caches full-evaluation results per expression subtree within one
// maintenance window. The key is the node pointer: the maintenance
// runtime builds each query tree once per equivalence node (subtree
// pointers are shared across the queries posed along a track), so two
// queries that fall back to full evaluation of the same subexpression
// hit the same slot — the multi-query optimization of the paper's §3
// applied at the executor layer.
//
// Results stored in a memo are shared; callers must treat them as
// read-only (every consumer in this package copies before mutating).
// A memo is only valid while the underlying store does not change, so
// the maintenance runtime installs a fresh one per window and discards
// it before mutations are applied.
type Memo map[algebra.Node]*Result

// WithMemo installs m on the evaluator and returns it (chainable).
// A nil memo disables sharing.
func (ev *Evaluator) WithMemo(m Memo) *Evaluator {
	ev.Memo = m
	return ev
}

// evalMemo consults the memo before full evaluation. On a hit the
// subexpression's I/O is not re-charged: the shared result was paid for
// once, which is exactly the saving the cost model attributes to shared
// subplans.
func (ev *Evaluator) evalMemo(n algebra.Node) (*Result, bool) {
	if ev.Memo == nil {
		return nil, false
	}
	res, ok := ev.Memo[n]
	if ok {
		obsSharedEvals.Inc()
	}
	return res, ok
}
