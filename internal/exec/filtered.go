package exec

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/value"
)

// EvalFiltered computes σ[cols = key](n), pushing the equality filter down
// to indexed lookups wherever the algebra allows:
//
//   - through Select (same schema);
//   - through Project when the filtered columns are pass-through;
//   - into the matching side(s) of a Join; when only one side is
//     constrained, the other side is probed per distinct join-key value
//     of the constrained side (the semijoin-style query of the paper);
//   - through Aggregate when the filtered columns are group-by columns;
//   - through Distinct, Union and Diff unconditionally.
//
// When no push is possible it falls back to full evaluation followed by
// an in-memory filter (correct, conservatively expensive — exactly the
// "the query must be evaluated" case of the paper's Section 2.2).
func (ev *Evaluator) EvalFiltered(n algebra.Node, cols []string, key value.Tuple) (*Result, error) {
	if len(cols) != len(key) {
		return nil, fmt.Errorf("exec: filter arity mismatch: %d cols, %d values", len(cols), len(key))
	}
	if len(cols) == 0 {
		return ev.Eval(n)
	}
	switch t := n.(type) {
	case *algebra.Rel:
		rel, ok := ev.Store.Get(t.Def.Name)
		if !ok {
			return nil, fmt.Errorf("exec: relation %q not stored", t.Def.Name)
		}
		rows := ev.lookup(rel, cols, key)
		return &Result{Schema: t.Schema(), Rows: rows}, nil

	case *algebra.Select:
		in, err := ev.EvalFiltered(t.Input, cols, key)
		if err != nil {
			return nil, err
		}
		return filterResult(in, t.Pred)

	case *algebra.Project:
		childCols, ok := mapThroughProject(t, cols)
		if !ok {
			return ev.evalThenFilter(n, cols, key)
		}
		in, err := ev.EvalFiltered(t.Input, childCols, key)
		if err != nil {
			return nil, err
		}
		return projectResult(in, t)

	case *algebra.Join:
		return ev.filteredJoin(t, cols, key)

	case *algebra.Aggregate:
		// Pushable only when every filtered column is a group-by column
		// (same name in input and output).
		out := t.Schema()
		for _, c := range cols {
			i, err := out.Resolve(c)
			if err != nil || i >= len(t.GroupBy) {
				return ev.evalThenFilter(n, cols, key)
			}
		}
		childCols := make([]string, len(cols))
		for i, c := range cols {
			childCols[i] = t.GroupBy[out.MustResolve(c)]
		}
		in, err := ev.EvalFiltered(t.Input, childCols, key)
		if err != nil {
			return nil, err
		}
		return aggregateResult(in, t)

	case *algebra.Distinct:
		in, err := ev.EvalFiltered(t.Input, cols, key)
		if err != nil {
			return nil, err
		}
		return distinctResult(in), nil

	case *algebra.Union:
		l, err := ev.EvalFiltered(t.L, cols, key)
		if err != nil {
			return nil, err
		}
		r, err := ev.EvalFiltered(t.R, cols, key)
		if err != nil {
			return nil, err
		}
		return unionResult(t.Schema(), l, r, +1), nil

	case *algebra.Diff:
		l, err := ev.EvalFiltered(t.L, cols, key)
		if err != nil {
			return nil, err
		}
		r, err := ev.EvalFiltered(t.R, cols, key)
		if err != nil {
			return nil, err
		}
		return unionResult(t.Schema(), l, r, -1), nil

	default:
		return ev.evalThenFilter(n, cols, key)
	}
}

// lookup probes rel by cols=key, honoring Free mode.
func (ev *Evaluator) lookup(rel *storage.Relation, cols []string, key value.Tuple) []storage.Row {
	if ev.Free {
		// Uncharged: find matches without touching the counter.
		wasResident := rel.Resident
		rel.Resident = true
		rows := rel.Lookup(cols, key)
		rel.Resident = wasResident
		return rows
	}
	return rel.Lookup(cols, key)
}

// mapThroughProject translates output column names to input column names
// when every filtered column is a pass-through column reference.
func mapThroughProject(p *algebra.Project, cols []string) ([]string, bool) {
	out := p.Schema()
	childCols := make([]string, len(cols))
	for i, c := range cols {
		j, err := out.Resolve(c)
		if err != nil {
			return nil, false
		}
		ref, ok := p.Items[j].E.(expr.Col)
		if !ok {
			return nil, false
		}
		childCols[i] = ref.Name
	}
	return childCols, true
}

// filteredJoin distributes the filter over the join inputs.
func (ev *Evaluator) filteredJoin(j *algebra.Join, cols []string, key value.Tuple) (*Result, error) {
	ls, rs := j.L.Schema(), j.R.Schema()
	var lcols, rcols []string
	var lkey, rkey value.Tuple
	for i, c := range cols {
		switch {
		case ls.Has(c):
			lcols = append(lcols, c)
			lkey = append(lkey, key[i])
		case rs.Has(c):
			rcols = append(rcols, c)
			rkey = append(rkey, key[i])
		default:
			return ev.evalThenFilter(j, cols, key)
		}
	}
	// If a filtered column is a join column, the equality transfers to
	// the other side too, letting both sides be probed directly.
	for i, c := range lcols {
		for _, on := range j.On {
			if sameCol(ls, on.Left, c) && !hasCol(rcols, on.Right) {
				rcols = append(rcols, on.Right)
				rkey = append(rkey, lkey[i])
			}
		}
	}
	for i, c := range rcols {
		for _, on := range j.On {
			if sameCol(rs, on.Right, c) && !hasCol(lcols, on.Left) {
				lcols = append(lcols, on.Left)
				lkey = append(lkey, rkey[i])
			}
		}
	}
	switch {
	case len(lcols) > 0 && len(rcols) > 0:
		l, err := ev.EvalFiltered(j.L, lcols, lkey)
		if err != nil {
			return nil, err
		}
		r, err := ev.EvalFiltered(j.R, rcols, rkey)
		if err != nil {
			return nil, err
		}
		return ev.hashJoin(j, l, r)
	case len(lcols) > 0:
		l, err := ev.EvalFiltered(j.L, lcols, lkey)
		if err != nil {
			return nil, err
		}
		return ev.probeJoin(j, l, true)
	case len(rcols) > 0:
		r, err := ev.EvalFiltered(j.R, rcols, rkey)
		if err != nil {
			return nil, err
		}
		return ev.probeJoin(j, r, false)
	default:
		return ev.evalThenFilter(j, cols, key)
	}
}

// probeJoin joins a computed side against the other input by probing the
// other input once per distinct join-key value (a semijoin-driven plan).
// driveLeft says the computed result is the left input.
func (ev *Evaluator) probeJoin(j *algebra.Join, drive *Result, driveLeft bool) (*Result, error) {
	driveCols := j.LeftCols()
	otherCols := j.RightCols()
	other := j.R
	if !driveLeft {
		driveCols, otherCols = otherCols, driveCols
		other = j.L
	}
	dpos := make([]int, len(driveCols))
	for i, c := range driveCols {
		k, err := drive.Schema.Resolve(c)
		if err != nil {
			return nil, err
		}
		dpos[i] = k
	}
	// Probe once per distinct join-key value.
	probed := map[string]*Result{}
	for _, row := range drive.Rows {
		jk := row.Tuple.Project(dpos)
		k := jk.Key()
		if _, ok := probed[k]; ok {
			continue
		}
		res, err := ev.EvalFiltered(other, otherCols, jk)
		if err != nil {
			return nil, err
		}
		probed[k] = res
	}
	outSchema := j.Schema()
	var residual func(value.Tuple) value.Value
	if j.Residual != nil {
		f, err := j.Residual.Compile(outSchema)
		if err != nil {
			return nil, err
		}
		residual = f
	}
	out := &Result{Schema: outSchema}
	for _, drow := range drive.Rows {
		jk := drow.Tuple.Project(dpos)
		matches := probed[jk.Key()]
		if matches == nil {
			continue
		}
		for _, orow := range matches.Rows {
			var t value.Tuple
			if driveLeft {
				t = ev.Win.ConcatTuples(drow.Tuple, orow.Tuple)
			} else {
				t = ev.Win.ConcatTuples(orow.Tuple, drow.Tuple)
			}
			if residual != nil && !residual(t).Truth() {
				continue
			}
			out.Rows = append(out.Rows, storage.Row{Tuple: t, Count: drow.Count * orow.Count})
		}
	}
	return out, nil
}

func (ev *Evaluator) evalThenFilter(n algebra.Node, cols []string, key value.Tuple) (*Result, error) {
	in, err := ev.Eval(n)
	if err != nil {
		return nil, err
	}
	pos := make([]int, len(cols))
	for i, c := range cols {
		j, err := in.Schema.Resolve(c)
		if err != nil {
			return nil, err
		}
		pos[i] = j
	}
	out := &Result{Schema: in.Schema}
	for _, row := range in.Rows {
		if row.Tuple.Project(pos).Equal(key) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// sameCol reports whether names a and b resolve to the same column of s.
func sameCol(s *catalog.Schema, a, b string) bool {
	ia, erra := s.Resolve(a)
	ib, errb := s.Resolve(b)
	return erra == nil && errb == nil && ia == ib
}

func hasCol(cols []string, c string) bool {
	for _, x := range cols {
		if x == c {
			return true
		}
	}
	return false
}
