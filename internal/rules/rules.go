// Package rules provides the equivalence rules that grow an expression
// DAG (Section 2.1: "rule-based query optimizers generate an expression
// DAG ... by using a set of equivalence rules"). The framework is
// rule-pluggable; this default set is sufficient to generate every DAG
// the paper exhibits:
//
//   - SelectPushJoin: σ_p(A⋈B) ⇒ σ_rest(σ_pA(A) ⋈ σ_pB(B))
//   - SelectPushAggregate: σ_p(γ(X)) ⇒ γ(σ_p(X)) for group-column
//     predicates
//   - JoinAssoc: (A⋈B)⋈C ⇔ A⋈(B⋈C) (both directions, condition-aware)
//   - AggJoinPush: γ(A⋈B) ⇒ π(γ'(A)⋈B) when B's join columns are a key
//     of B and the grouping determines the join key (eager aggregation in
//     the style of Yan–Larson) — the rule that produces Figure 1's left
//     tree and Figure 3's V1.
//
// Rules that change output column order or naming re-align with a pure
// projection, keeping memo equivalence strict.
package rules

import (
	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/dag"
	"repro/internal/expr"
)

// Default returns the standard rule set.
func Default() []dag.Rule {
	return []dag.Rule{
		SelectPushJoin{},
		SelectPushAggregate{},
		JoinAssoc{},
		AggJoinPush{},
	}
}

// refOf wraps an equivalence node for use as a rule-output leaf.
func refOf(e *dag.EqNode) algebra.Node { return dag.Ref{Eq: e} }

// SelectPushJoin pushes selection conjuncts into the sides of a child
// join they fully resolve against.
type SelectPushJoin struct{}

// Name implements dag.Rule.
func (SelectPushJoin) Name() string { return "select-push-join" }

// Apply implements dag.Rule.
func (SelectPushJoin) Apply(d *dag.DAG, op *dag.OpNode) []algebra.Node {
	sel, ok := op.Template.(*algebra.Select)
	if !ok {
		return nil
	}
	child := op.Children[0]
	var out []algebra.Node
	for _, childOp := range child.Ops {
		join, ok := childOp.Template.(*algebra.Join)
		if !ok {
			continue
		}
		l, r := childOp.Children[0], childOp.Children[1]
		var lConj, rConj, rest []expr.Expr
		for _, c := range expr.Conjuncts(sel.Pred) {
			switch {
			case expr.RefersOnly(c, l.Schema()):
				lConj = append(lConj, c)
			case expr.RefersOnly(c, r.Schema()):
				rConj = append(rConj, c)
			default:
				rest = append(rest, c)
			}
		}
		if len(lConj) == 0 && len(rConj) == 0 {
			continue
		}
		var lNode algebra.Node = refOf(l)
		if len(lConj) > 0 {
			lNode = algebra.NewSelect(expr.AndOf(lConj...), lNode)
		}
		var rNode algebra.Node = refOf(r)
		if len(rConj) > 0 {
			rNode = algebra.NewSelect(expr.AndOf(rConj...), rNode)
		}
		var tree algebra.Node = &algebra.Join{
			On: join.On, Residual: join.Residual, L: lNode, R: rNode,
		}
		if len(rest) > 0 {
			tree = algebra.NewSelect(expr.AndOf(rest...), tree)
		}
		out = append(out, tree)
	}
	return out
}

// SelectPushAggregate pushes a selection below a child aggregation when
// every conjunct references only group-by columns.
type SelectPushAggregate struct{}

// Name implements dag.Rule.
func (SelectPushAggregate) Name() string { return "select-push-aggregate" }

// Apply implements dag.Rule.
func (SelectPushAggregate) Apply(d *dag.DAG, op *dag.OpNode) []algebra.Node {
	sel, ok := op.Template.(*algebra.Select)
	if !ok {
		return nil
	}
	child := op.Children[0]
	var out []algebra.Node
	for _, childOp := range child.Ops {
		agg, ok := childOp.Template.(*algebra.Aggregate)
		if !ok {
			continue
		}
		groupSet := map[string]bool{}
		for _, g := range agg.GroupBy {
			groupSet[g] = true
		}
		pushable := true
		for _, col := range expr.ColumnsOf(sel.Pred) {
			if !groupSet[col] {
				pushable = false
				break
			}
		}
		if !pushable {
			continue
		}
		inner := algebra.NewSelect(sel.Pred, refOf(childOp.Children[0]))
		out = append(out, &algebra.Aggregate{
			GroupBy: agg.GroupBy, Aggs: agg.Aggs, Input: inner,
		})
	}
	return out
}

// JoinAssoc reassociates nested equijoins:
//
//	(A ⋈p B) ⋈q C  ⇒  A ⋈p (B ⋈q C)   when q's left columns are all in B
//	A ⋈p (B ⋈q C)  ⇒  (A ⋈p B) ⋈q C   when p's right columns are all in B
//
// Both directions preserve the flat column order (A,B,C), so no
// realignment projection is needed.
type JoinAssoc struct{}

// Name implements dag.Rule.
func (JoinAssoc) Name() string { return "join-assoc" }

// Apply implements dag.Rule.
func (JoinAssoc) Apply(d *dag.DAG, op *dag.OpNode) []algebra.Node {
	outer, ok := op.Template.(*algebra.Join)
	if !ok || outer.Residual != nil {
		return nil
	}
	var out []algebra.Node
	// Left-nested: (A ⋈p B) ⋈q C.
	for _, childOp := range op.Children[0].Ops {
		inner, ok := childOp.Template.(*algebra.Join)
		if !ok || inner.Residual != nil {
			continue
		}
		a, b := childOp.Children[0], childOp.Children[1]
		c := op.Children[1]
		if !allResolve(outer.LeftCols(), b.Schema()) {
			continue
		}
		// p's left columns must be in A for the rewrite to type-check.
		if !allResolve(inner.LeftCols(), a.Schema()) {
			continue
		}
		bc := algebra.NewJoin(outer.On, refOf(b), refOf(c))
		out = append(out, algebra.NewJoin(inner.On, refOf(a), bc))
	}
	// Right-nested: A ⋈p (B ⋈q C).
	for _, childOp := range op.Children[1].Ops {
		inner, ok := childOp.Template.(*algebra.Join)
		if !ok || inner.Residual != nil {
			continue
		}
		b, c := childOp.Children[0], childOp.Children[1]
		a := op.Children[0]
		if !allResolve(outer.RightCols(), b.Schema()) {
			continue
		}
		if !allResolve(inner.RightCols(), c.Schema()) {
			continue
		}
		ab := algebra.NewJoin(outer.On, refOf(a), refOf(b))
		out = append(out, algebra.NewJoin(inner.On, ab, refOf(c)))
	}
	return out
}

func allResolve(cols []string, s *catalog.Schema) bool {
	for _, c := range cols {
		if !s.Has(c) {
			return false
		}
	}
	return true
}
