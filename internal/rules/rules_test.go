package rules_test

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/dag"
	"repro/internal/expr"
	"repro/internal/rules"
	"repro/internal/value"
)

// schema helpers: A(K, X) keyed on K; B(K, Y) NOT keyed on K; C(K, Z)
// keyed on K.
func tableDef(name string, keyed bool) *catalog.TableDef {
	def := &catalog.TableDef{
		Name: name,
		Schema: catalog.NewSchema(
			catalog.Column{Qualifier: name, Name: "K", Type: value.Int},
			catalog.Column{Qualifier: name, Name: "V", Type: value.Int},
		),
		Indexes: []catalog.IndexDef{{Name: name + "_k", Columns: []string{"K"}}},
	}
	if keyed {
		def.Keys = [][]string{{"K"}}
	}
	return def
}

func expand(t *testing.T, tree algebra.Node) *dag.DAG {
	t.Helper()
	d, err := dag.FromTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Expand(rules.Default(), 300); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestAggPushRequiresKeyOnOtherSide: pushing the aggregate below the
// join is legal only when the other side's join columns form a key
// (otherwise multiplicities would change — the paper's Figure 5 point).
func TestAggPushRequiresKeyOnOtherSide(t *testing.T) {
	build := func(keyed bool) algebra.Node {
		a := algebra.Scan(tableDef("A", false))
		b := algebra.Scan(tableDef("B", keyed))
		join := algebra.NewJoin([]algebra.JoinCond{{Left: "A.K", Right: "B.K"}}, a, b)
		return algebra.NewAggregate(
			[]string{"A.K"},
			[]algebra.AggSpec{{Func: algebra.Sum, Arg: expr.C("A.V"), As: "S"}},
			join,
		)
	}
	// Keyed: the pushed aggregate over A alone must appear.
	d := expand(t, build(true))
	pushed := algebra.NewAggregate(
		[]string{"A.K"},
		[]algebra.AggSpec{{Func: algebra.Sum, Arg: expr.C("A.V"), As: "S"}},
		algebra.Scan(tableDef("A", false)),
	)
	if d.FindEq(pushed) == nil {
		t.Errorf("keyed other side: aggregate should push down\n%s", d.Render())
	}
	// Unkeyed: it must not.
	d = expand(t, build(false))
	if d.FindEq(pushed) != nil {
		t.Errorf("unkeyed other side: aggregate must NOT push down\n%s", d.Render())
	}
}

// TestAggPushRequiresArgsOneSide: an aggregate whose argument spans both
// join sides (Figure 5's SUM(S.Quantity*T.Price)) cannot push.
func TestAggPushRequiresArgsOneSide(t *testing.T) {
	a := algebra.Scan(tableDef("A", true))
	b := algebra.Scan(tableDef("B", true))
	join := algebra.NewJoin([]algebra.JoinCond{{Left: "A.K", Right: "B.K"}}, a, b)
	agg := algebra.NewAggregate(
		[]string{"A.K"},
		[]algebra.AggSpec{{
			Func: algebra.Sum,
			Arg:  expr.Arith{Op: expr.Times, L: expr.C("A.V"), R: expr.C("B.V")},
			As:   "S",
		}},
		join,
	)
	d := expand(t, agg)
	// No aggregate over A alone or B alone may appear.
	for _, e := range d.NonLeafEqs() {
		for _, op := range e.Ops {
			if op.Kind() != algebra.KindAggregate {
				continue
			}
			if op.Children[0].IsLeaf() {
				t.Errorf("cross-side aggregate pushed below the join:\n%s", d.Render())
			}
		}
	}
}

// TestSelectPushJoinSplitsConjuncts: single-side conjuncts sink; the
// cross-side one stays above.
func TestSelectPushJoinSplitsConjuncts(t *testing.T) {
	a := algebra.Scan(tableDef("A", true))
	b := algebra.Scan(tableDef("B", true))
	join := algebra.NewJoin([]algebra.JoinCond{{Left: "A.K", Right: "B.K"}}, a, b)
	sel := algebra.NewSelect(expr.AndOf(
		expr.Compare(expr.GT, expr.C("A.V"), expr.IntLit(5)),
		expr.Compare(expr.LT, expr.C("B.V"), expr.C("A.V")),
	), join)
	d := expand(t, sel)
	pushed := algebra.NewSelect(
		expr.Compare(expr.GT, expr.C("A.V"), expr.IntLit(5)),
		algebra.Scan(tableDef("A", true)),
	)
	if d.FindEq(pushed) == nil {
		t.Errorf("A-side conjunct should have been pushed:\n%s", d.Render())
	}
}

// TestSelectPushAggregateGroupColsOnly: predicates on group columns sink
// below the aggregation; predicates on aggregate outputs do not.
func TestSelectPushAggregateGroupColsOnly(t *testing.T) {
	a := algebra.Scan(tableDef("A", true))
	agg := algebra.NewAggregate(
		[]string{"A.K"},
		[]algebra.AggSpec{{Func: algebra.Sum, Arg: expr.C("A.V"), As: "S"}},
		a,
	)
	sel := algebra.NewSelect(expr.Compare(expr.EQ, expr.C("A.K"), expr.IntLit(7)), agg)
	d := expand(t, sel)
	pushed := algebra.NewAggregate(
		[]string{"A.K"},
		[]algebra.AggSpec{{Func: algebra.Sum, Arg: expr.C("A.V"), As: "S"}},
		algebra.NewSelect(expr.Compare(expr.EQ, expr.C("A.K"), expr.IntLit(7)),
			algebra.Scan(tableDef("A", true))),
	)
	if d.FindEq(pushed) == nil {
		t.Errorf("group-column select should push below the aggregate:\n%s", d.Render())
	}

	// HAVING-style predicate on the aggregate output must not push.
	selAgg := algebra.NewSelect(expr.Compare(expr.GT, expr.C("S"), expr.IntLit(0)), agg)
	d2 := expand(t, selAgg)
	for _, e := range d2.NonLeafEqs() {
		for _, op := range e.Ops {
			if s, ok := op.Template.(*algebra.Select); ok {
				if op.Children[0].IsLeaf() && s.Pred.String() != "" {
					for _, c := range expr.ColumnsOf(s.Pred) {
						if c == "S" {
							t.Errorf("aggregate-output predicate pushed below aggregation:\n%s", d2.Render())
						}
					}
				}
			}
		}
	}
}

// TestJoinAssocBothDirections: a three-way chain reassociates and reaches
// fixpoint with both shapes present.
func TestJoinAssocBothDirections(t *testing.T) {
	a := algebra.Scan(tableDef("A", true))
	b := algebra.Scan(tableDef("B", true))
	c := algebra.Scan(tableDef("C", true))
	leftNested := algebra.NewJoin(
		[]algebra.JoinCond{{Left: "B.V", Right: "C.K"}},
		algebra.NewJoin([]algebra.JoinCond{{Left: "A.K", Right: "B.K"}}, a, b),
		c,
	)
	d := expand(t, leftNested)
	rightNested := algebra.NewJoin(
		[]algebra.JoinCond{{Left: "A.K", Right: "B.K"}},
		algebra.Scan(tableDef("A", true)),
		algebra.NewJoin([]algebra.JoinCond{{Left: "B.V", Right: "C.K"}},
			algebra.Scan(tableDef("B", true)),
			algebra.Scan(tableDef("C", true))),
	)
	if d.FindEq(rightNested) == nil {
		t.Errorf("right-nested shape missing after expansion:\n%s", d.Render())
	}
	// And both nestings share the same root class.
	if d.FindEq(leftNested) != d.FindEq(rightNested) {
		t.Error("the two nestings must be one equivalence class")
	}
}

// TestRuleNamesAreStable: the engine deduplicates rule applications by
// name; names must be distinct.
func TestRuleNamesAreStable(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range rules.Default() {
		if seen[r.Name()] {
			t.Errorf("duplicate rule name %q", r.Name())
		}
		seen[r.Name()] = true
	}
}
