package rules

import (
	"repro/internal/algebra"
	"repro/internal/dag"
	"repro/internal/expr"
)

// AggJoinPush pushes grouping/aggregation below one side of a child join
// (eager aggregation, in the style of Yan and Larson, whom the paper
// credits for generating Figure 1's trees):
//
//	γ[G; aggs](A ⋈ B)  ⇒  π[G, aggs](γ[jcA ∪ (G∩A); aggs](A) ⋈ B)
//
// Preconditions for pushing into side A (symmetrically B):
//
//  1. every aggregate argument references only A's columns;
//  2. B's join columns form a candidate key of B (each A tuple matches at
//     most one B tuple, so multiplicities are preserved — the paper's
//     Figure 5 discussion: "If Item is not a key for relation R, then the
//     aggregation cannot be pushed up ... because the multiplicities
//     would change");
//  3. the original grouping G determines A's join columns under the
//     column-equality closure of the expression (so each original group
//     maps to a single join-key value).
//
// The realignment projection keeps memo equivalence strict.
type AggJoinPush struct{}

// Name implements dag.Rule.
func (AggJoinPush) Name() string { return "agg-join-push" }

// Apply implements dag.Rule.
func (AggJoinPush) Apply(d *dag.DAG, op *dag.OpNode) []algebra.Node {
	agg, ok := op.Template.(*algebra.Aggregate)
	if !ok {
		return nil
	}
	child := op.Children[0]
	var out []algebra.Node
	for _, childOp := range child.Ops {
		join, ok := childOp.Template.(*algebra.Join)
		if !ok || join.Residual != nil {
			continue
		}
		for side := 0; side <= 1; side++ {
			if tree := tryPush(d, agg, join, childOp, side); tree != nil {
				out = append(out, tree)
			}
		}
	}
	return out
}

// tryPush attempts to push agg into the given side of the join op.
func tryPush(d *dag.DAG, agg *algebra.Aggregate, join *algebra.Join, joinOp *dag.OpNode, side int) algebra.Node {
	target := joinOp.Children[side]
	other := joinOp.Children[1-side]
	var targetJoinCols, otherJoinCols []string
	if side == 0 {
		targetJoinCols, otherJoinCols = join.LeftCols(), join.RightCols()
	} else {
		targetJoinCols, otherJoinCols = join.RightCols(), join.LeftCols()
	}
	ts := target.Schema()

	// 1. Aggregate arguments confined to the target side.
	for _, a := range agg.Aggs {
		switch a.Func {
		case algebra.Sum, algebra.Count, algebra.Avg, algebra.Min, algebra.Max:
		default:
			return nil
		}
		if a.Arg != nil && !expr.RefersOnly(a.Arg, ts) {
			return nil
		}
	}

	// 2. Other side keyed on its join columns.
	if !d.KeyedOn(other, otherJoinCols) {
		return nil
	}

	// 3. G determines the target join columns under column equalities.
	uf := algebra.NewColEquiv()
	for _, c := range join.On {
		uf.Union(c.Left, c.Right)
	}
	uf.Collect(d.RepTree(target))
	uf.Collect(d.RepTree(other))
	for _, jc := range targetJoinCols {
		if !uf.SameAsAny(jc, agg.GroupBy) {
			return nil
		}
	}

	// Build the pushed aggregate: group by the target join columns plus
	// whatever original group columns live on the target side.
	pushedGroup := append([]string{}, targetJoinCols...)
	for _, g := range agg.GroupBy {
		if ts.Has(g) && !contains(pushedGroup, g) {
			pushedGroup = append(pushedGroup, g)
		}
	}
	// Group columns from the other side must resolve there, or the
	// realignment projection cannot be built.
	os := other.Schema()
	for _, g := range agg.GroupBy {
		if !ts.Has(g) && !os.Has(g) {
			return nil
		}
	}
	pushed := algebra.NewAggregate(pushedGroup, agg.Aggs, refOf(target))
	var l, r algebra.Node
	if side == 0 {
		l, r = algebra.Node(pushed), refOf(other)
	} else {
		l, r = refOf(other), algebra.Node(pushed)
	}
	newJoin := &algebra.Join{On: join.On, L: l, R: r}
	items := make([]algebra.ProjectItem, 0, len(agg.GroupBy)+len(agg.Aggs))
	for _, g := range agg.GroupBy {
		items = append(items, algebra.ProjectItem{E: expr.C(g)})
	}
	for _, a := range agg.Aggs {
		items = append(items, algebra.ProjectItem{E: expr.C(a.As)})
	}
	return algebra.NewProject(items, newJoin)
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
