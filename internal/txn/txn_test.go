package txn

import (
	"strings"
	"testing"
)

func TestPaperTypes(t *testing.T) {
	types := PaperTypes()
	if len(types) != 2 {
		t.Fatalf("PaperTypes = %d types", len(types))
	}
	emp, dept := types[0], types[1]
	if emp.Name != ">Emp" || dept.Name != ">Dept" {
		t.Errorf("names = %q, %q", emp.Name, dept.Name)
	}
	if emp.Weight != dept.Weight {
		t.Error("paper uses equal weights")
	}
	u, ok := emp.UpdateOf("Emp")
	if !ok || u.Kind != Modify || u.Size != 1 {
		t.Errorf("Emp update = %+v", u)
	}
	if !u.Modifies("Salary") || u.Modifies("DName") {
		t.Error("only Salary is modified by >Emp")
	}
	if !u.Modifies("Emp.Salary") {
		t.Error("qualified names should match bare modified columns")
	}
}

func TestUpdatedRels(t *testing.T) {
	ty := &Type{Name: "multi", Weight: 1, Updates: []RelUpdate{
		{Rel: "A", Kind: Insert, Size: 2},
		{Rel: "B", Kind: Delete, Size: 1},
	}}
	rels := ty.UpdatedRels()
	if len(rels) != 2 || rels[0] != "A" || rels[1] != "B" {
		t.Errorf("UpdatedRels = %v", rels)
	}
	if _, ok := ty.UpdateOf("C"); ok {
		t.Error("UpdateOf(C) should miss")
	}
}

func TestTotalWeight(t *testing.T) {
	if got := TotalWeight(PaperTypes()); got != 2 {
		t.Errorf("TotalWeight = %g", got)
	}
	if got := TotalWeight(nil); got != 0 {
		t.Errorf("TotalWeight(nil) = %g", got)
	}
}

func TestKindAndTypeStrings(t *testing.T) {
	if Insert.String() != "insert" || Delete.String() != "delete" || Modify.String() != "modify" {
		t.Error("kind names changed")
	}
	s := PaperTypes()[0].String()
	for _, want := range []string{">Emp", "modify", "Emp", "w=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("Type.String() missing %q: %s", want, s)
		}
	}
}
