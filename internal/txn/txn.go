// Package txn models the paper's update workload (Section 3.2): a set of
// transaction types T1..Tn, each defining which relations it updates, the
// kind and size of each update, and a weight f_i reflecting relative
// frequency or importance.
package txn

import (
	"fmt"
	"strings"
)

// Kind is an update kind.
type Kind uint8

// Update kinds.
const (
	Insert Kind = iota
	Delete
	Modify
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	case Modify:
		return "modify"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// RelUpdate describes one relation's update within a transaction type.
type RelUpdate struct {
	Rel  string
	Kind Kind
	// Size is the expected number of tuples updated per transaction
	// (the paper's "size of the update", needed for cost estimation).
	Size float64
	// Cols are the columns changed by a Modify (nil for Insert/Delete).
	// Whether a modification touches join/group/indexed columns changes
	// how deltas propagate and what index maintenance costs.
	Cols []string
}

// Type is a transaction type with its weight.
type Type struct {
	Name    string
	Weight  float64
	Updates []RelUpdate
}

// UpdatedRels returns the names of the relations this type updates.
func (t *Type) UpdatedRels() []string {
	out := make([]string, len(t.Updates))
	for i, u := range t.Updates {
		out[i] = u.Rel
	}
	return out
}

// UpdateOf returns the update spec for a relation, if any.
func (t *Type) UpdateOf(rel string) (RelUpdate, bool) {
	for _, u := range t.Updates {
		if u.Rel == rel {
			return u, true
		}
	}
	return RelUpdate{}, false
}

// Modifies reports whether the type modifies any of the given columns of
// the relation (bare or qualified names accepted).
func (u RelUpdate) Modifies(col string) bool {
	b := bare(col)
	for _, c := range u.Cols {
		if bare(c) == b {
			return true
		}
	}
	return false
}

func bare(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// String renders the type for reports.
func (t *Type) String() string {
	parts := make([]string, len(t.Updates))
	for i, u := range t.Updates {
		parts[i] = fmt.Sprintf("%s %s×%g", u.Kind, u.Rel, u.Size)
	}
	return fmt.Sprintf("%s(w=%g: %s)", t.Name, t.Weight, strings.Join(parts, ", "))
}

// TotalWeight sums the weights of a set of types.
func TotalWeight(types []*Type) float64 {
	var w float64
	for _, t := range types {
		w += t.Weight
	}
	return w
}

// PaperTypes returns the two transaction types of Section 3.6: ">Emp"
// modifies the Salary of a single employee; ">Dept" modifies the Budget
// of a single department. Equal weights, as in the paper's headline
// ("assuming an equal weight for the two transactions").
func PaperTypes() []*Type {
	return []*Type{
		{
			Name:   ">Emp",
			Weight: 1,
			Updates: []RelUpdate{
				{Rel: "Emp", Kind: Modify, Size: 1, Cols: []string{"Salary"}},
			},
		},
		{
			Name:   ">Dept",
			Weight: 1,
			Updates: []RelUpdate{
				{Rel: "Dept", Kind: Modify, Size: 1, Cols: []string{"Budget"}},
			},
		},
	}
}
