package txn

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/delta"
)

// Transaction is one concrete transaction instance: the type it was
// drawn from and the actual per-base-relation deltas it performs. Type
// may be nil — it only informs cost-based track selection, never
// correctness — in which case the batch pipeline infers an update
// description from the delta shapes.
type Transaction struct {
	Type    *Type
	Updates map[string]*delta.Delta
}

// MergedType synthesizes a transaction type describing a whole batch
// window, given its coalesced per-relation deltas: per relation the
// update size is the net change count, kinds collapse to Modify when
// the window mixes them, and modified column sets union. Only relations
// with non-empty net deltas appear, so annihilated updates do not
// influence track choice. The name is deterministic in the window's
// update signature — merged is already sorted by relation name — and
// doubles as a plan-cache key.
func MergedType(txns []Transaction, merged delta.Coalesced) *Type {
	out := &Type{Weight: 1}
	parts := make([]string, 0, len(merged))
	for _, rd := range merged {
		kind, cols, typed := declaredUpdate(txns, rd.Rel)
		if !typed {
			kind = inferKind(rd.Delta)
		}
		u := RelUpdate{Rel: rd.Rel, Kind: kind, Size: float64(rd.Delta.Size()), Cols: cols}
		out.Updates = append(out.Updates, u)
		parts = append(parts, fmt.Sprintf("%s:%s:%s:%g", rd.Rel, kind, strings.Join(cols, "+"), u.Size))
	}
	out.Name = "batch[" + strings.Join(parts, " ") + "]"
	return out
}

// declaredUpdate folds the declared update specs for rel across the
// window's typed transactions: a uniform kind survives, mixed kinds
// become Modify, and modified columns union (sorted for determinism).
func declaredUpdate(txns []Transaction, rel string) (Kind, []string, bool) {
	var kind Kind
	seen := false
	mixed := false
	colSet := map[string]bool{}
	for _, t := range txns {
		if t.Type == nil {
			continue
		}
		if d, ok := t.Updates[rel]; !ok || d.Empty() {
			continue
		}
		u, ok := t.Type.UpdateOf(rel)
		if !ok {
			continue
		}
		if !seen {
			kind = u.Kind
			seen = true
		} else if u.Kind != kind {
			mixed = true
		}
		for _, c := range u.Cols {
			colSet[c] = true
		}
	}
	if !seen {
		return Modify, nil, false
	}
	if mixed {
		kind = Modify
	}
	cols := make([]string, 0, len(colSet))
	for c := range colSet {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	return kind, cols, true
}

// inferKind classifies a coalesced delta by its change shapes: pure
// insertions, pure deletions, or (for mixtures) Modify.
func inferKind(d *delta.Delta) Kind {
	ins, del := false, false
	for _, c := range d.Changes {
		switch {
		case c.IsInsert():
			ins = true
		case c.IsDelete():
			del = true
		default:
			return Modify
		}
	}
	switch {
	case ins && !del:
		return Insert
	case del && !ins:
		return Delete
	default:
		return Modify
	}
}
