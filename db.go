// Package mvmaint (module "repro") is the public API of this
// reproduction of Ross, Srivastava & Sudarshan, "Materialized View
// Maintenance and Integrity Constraint Checking: Trading Space for Time"
// (SIGMOD 1996).
//
// The workflow mirrors the paper:
//
//  1. Open a DB and Exec DDL/DML to define base relations, load data, and
//     declare views (CREATE VIEW) and assertions (CREATE ASSERTION ...
//     CHECK (NOT EXISTS ...)).
//  2. Build a System for the views/assertions you want maintained, with a
//     workload of weighted transaction types. Build grows the expression
//     DAG with equivalence rules and runs the view-set optimizer
//     (Algorithm OptimalViewSet, the Shielding decomposition, or one of
//     the Section 5 heuristics) to pick the additional views to
//     materialize.
//  3. Execute transactions; the system maintains every materialized view
//     incrementally along cost-chosen update tracks and checks the
//     assertions, optionally rolling back violators. Page I/O is
//     accounted exactly as in the paper's Section 3.6.
package mvmaint

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/delta"
	"repro/internal/exec"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/txn"
)

// DB is a database instance: catalog, storage, and the SQL front end with
// its view/assertion registry.
type DB struct {
	Catalog *catalog.Catalog
	Store   *storage.Store

	translator *sqlparser.Translator
	views      map[string]algebra.Node
	assertions map[string]algebra.Node
	order      []string
}

// Open returns an empty database.
func Open() *DB {
	cat := catalog.New()
	return &DB{
		Catalog:    cat,
		Store:      storage.NewStore(),
		translator: sqlparser.NewTranslator(cat),
		views:      map[string]algebra.Node{},
		assertions: map[string]algebra.Node{},
	}
}

// Exec runs a script of DDL and DML statements: CREATE TABLE / INDEX /
// VIEW / ASSERTION, INSERT, DELETE, UPDATE. DML here applies directly to
// base relations without view maintenance (use a System for maintained
// execution); it is intended for initial population.
func (db *DB) Exec(sql string) error {
	stmts, err := sqlparser.Parse(sql)
	if err != nil {
		return err
	}
	for _, s := range stmts {
		if err := db.exec(s); err != nil {
			return err
		}
	}
	return nil
}

// MustExec is Exec that panics on error (setup code, examples).
func (db *DB) MustExec(sql string) {
	if err := db.Exec(sql); err != nil {
		panic(err)
	}
}

func (db *DB) exec(s sqlparser.Statement) error {
	switch t := s.(type) {
	case *sqlparser.CreateTable:
		def := sqlparser.TableDefFrom(t)
		if err := db.Catalog.Add(def); err != nil {
			return err
		}
		_, err := db.Store.Create(def)
		return err
	case *sqlparser.CreateIndex:
		def, ok := db.Catalog.Get(t.Table)
		if !ok {
			return fmt.Errorf("mvmaint: unknown table %q", t.Table)
		}
		def.Indexes = append(def.Indexes, catalog.IndexDef{Name: t.Name, Columns: t.Columns})
		// Rebuild storage with the new index, keeping contents.
		rel := db.Store.MustGet(t.Table)
		rows := rel.Snapshot()
		nrel, err := db.Store.Create(def)
		if err != nil {
			return err
		}
		nrel.Load(rows)
		nrel.RefreshStats()
		return nil
	case *sqlparser.CreateView:
		tree, err := db.translator.TranslateView(t)
		if err != nil {
			return err
		}
		db.views[t.Name] = tree
		db.order = append(db.order, t.Name)
		return nil
	case *sqlparser.CreateAssertion:
		tree, err := db.translator.TranslateAssertion(t)
		if err != nil {
			return err
		}
		db.assertions[t.Name] = tree
		db.order = append(db.order, t.Name)
		return nil
	case *sqlparser.Insert:
		def, ok := db.Catalog.Get(t.Table)
		if !ok {
			return fmt.Errorf("mvmaint: unknown table %q", t.Table)
		}
		d, err := sqlparser.InsertDelta(def, t)
		if err != nil {
			return err
		}
		rel := db.Store.MustGet(t.Table)
		// ApplyBatch (not Load) so the store's mutation hook — the WAL,
		// when attached — observes raw INSERTs too.
		applyUncharged(rel, d)
		rel.RefreshStats()
		return nil
	case *sqlparser.Delete:
		rel, ok := db.Store.Get(t.Table)
		if !ok {
			return fmt.Errorf("mvmaint: unknown table %q", t.Table)
		}
		d, err := sqlparser.DeleteDelta(db.translator, rel, t)
		if err != nil {
			return err
		}
		applyUncharged(rel, d)
		rel.RefreshStats()
		return nil
	case *sqlparser.Update:
		rel, ok := db.Store.Get(t.Table)
		if !ok {
			return fmt.Errorf("mvmaint: unknown table %q", t.Table)
		}
		d, err := sqlparser.UpdateDelta(db.translator, rel, t)
		if err != nil {
			return err
		}
		applyUncharged(rel, d)
		rel.RefreshStats()
		return nil
	case *sqlparser.SelectStmt:
		return fmt.Errorf("mvmaint: use DB.Query for SELECT")
	default:
		return fmt.Errorf("mvmaint: unsupported statement %T", s)
	}
}

func applyUncharged(rel *storage.Relation, d *delta.Delta) {
	was := rel.Resident
	rel.Resident = true
	rel.ApplyBatch(d.ToMutations())
	rel.Resident = was
}

// Query evaluates a SELECT statement (or a defined view by `SELECT *
// FROM viewname`) and returns its rows; evaluation is uncharged.
func (db *DB) Query(sql string) (*exec.Result, error) {
	stmt, err := sqlparser.ParseOne(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlparser.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("mvmaint: Query expects SELECT, got %T", stmt)
	}
	tree, err := db.translator.TranslateSelect(sel)
	if err != nil {
		return nil, err
	}
	return exec.NewFree(db.Store).Eval(tree)
}

// View returns the algebra tree of a defined view or assertion.
func (db *DB) View(name string) (algebra.Node, bool) {
	if v, ok := db.views[name]; ok {
		return v, true
	}
	v, ok := db.assertions[name]
	return v, ok
}

// IsAssertion reports whether the name was declared as an assertion.
func (db *DB) IsAssertion(name string) bool {
	_, ok := db.assertions[name]
	return ok
}

// ViewNames returns the declared view and assertion names in order.
func (db *DB) ViewNames() []string {
	out := make([]string, len(db.order))
	copy(out, db.order)
	return out
}

// RefreshStats recomputes statistics for every base relation.
func (db *DB) RefreshStats() {
	for _, name := range db.Store.Names() {
		db.Store.MustGet(name).RefreshStats()
	}
}

// TxnFromSQL parses one DML statement into a transaction type plus its
// delta, ready for maintained execution by a System. The transaction-type
// name encodes relation, kind and modified columns so maintenance plans
// are cached across repeated statements of the same shape.
func (db *DB) TxnFromSQL(sql string) (*txn.Type, map[string]*delta.Delta, error) {
	stmt, err := sqlparser.ParseOne(sql)
	if err != nil {
		return nil, nil, err
	}
	switch t := stmt.(type) {
	case *sqlparser.Insert:
		def, ok := db.Catalog.Get(t.Table)
		if !ok {
			return nil, nil, fmt.Errorf("mvmaint: unknown table %q", t.Table)
		}
		d, err := sqlparser.InsertDelta(def, t)
		if err != nil {
			return nil, nil, err
		}
		ty := &txn.Type{
			Name: "insert:" + t.Table, Weight: 1,
			Updates: []txn.RelUpdate{{Rel: t.Table, Kind: txn.Insert, Size: float64(d.Size())}},
		}
		return ty, map[string]*delta.Delta{t.Table: d}, nil
	case *sqlparser.Delete:
		rel, ok := db.Store.Get(t.Table)
		if !ok {
			return nil, nil, fmt.Errorf("mvmaint: unknown table %q", t.Table)
		}
		d, err := sqlparser.DeleteDelta(db.translator, rel, t)
		if err != nil {
			return nil, nil, err
		}
		ty := &txn.Type{
			Name: "delete:" + t.Table, Weight: 1,
			Updates: []txn.RelUpdate{{Rel: t.Table, Kind: txn.Delete, Size: maxf(1, float64(d.Size()))}},
		}
		return ty, map[string]*delta.Delta{t.Table: d}, nil
	case *sqlparser.Update:
		rel, ok := db.Store.Get(t.Table)
		if !ok {
			return nil, nil, fmt.Errorf("mvmaint: unknown table %q", t.Table)
		}
		d, err := sqlparser.UpdateDelta(db.translator, rel, t)
		if err != nil {
			return nil, nil, err
		}
		cols := sqlparser.ModifiedColumns(t)
		ty := &txn.Type{
			Name: "update:" + t.Table + ":" + fmt.Sprint(cols), Weight: 1,
			Updates: []txn.RelUpdate{{
				Rel: t.Table, Kind: txn.Modify,
				Size: maxf(1, float64(d.Size())), Cols: cols,
			}},
		}
		return ty, map[string]*delta.Delta{t.Table: d}, nil
	default:
		return nil, nil, fmt.Errorf("mvmaint: not a DML statement: %T", stmt)
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
